//! Efficiency analysis: regenerating Table III.

use crate::experiment::Experiment;
use crate::runner::run_experiment;
use crate::study::StudyConfig;
use perfport_machines::Precision;
use perfport_metrics::EfficiencyMatrix;
use perfport_models::{vendor_headroom, Arch, ModelFamily, ProgModel};

/// What stands in for the vendor library in the `e_i` denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostBaseline {
    /// The paper's published framing: the naive loop nest compiled by the
    /// vendor toolchain (CPU) or the naive CUDA/HIP kernel (GPU). Used by
    /// the cross-check tests that pin this repository to Table III as
    /// printed.
    NaiveModel,
    /// The honest framing: the naive vendor denominator scaled by the
    /// measured headroom of the tuned kernel — the packed register-tiled
    /// CPU kernel (`perfport-gemm::tuned`, `BENCH_gemm.json`) and the
    /// tiled shared-memory / tensor-core GPU kernels (`gpu_gemm`,
    /// `BENCH_gpu.json`); ratios committed in [`perfport_models::vendor`].
    /// Efficiencies drop by that factor — a vendor library is not a naive
    /// loop nest.
    #[default]
    MeasuredTuned,
}

impl HostBaseline {
    /// Denominator multiplier for one (architecture, precision) cell.
    pub fn headroom(&self, arch: Arch, precision: Precision) -> f64 {
        match self {
            HostBaseline::NaiveModel => 1.0,
            HostBaseline::MeasuredTuned => vendor_headroom(arch, precision).value,
        }
    }

    /// The provenance label stamped into figure CSV headers and
    /// manifests: which vendor reference divided each row.
    pub fn label(&self) -> &'static str {
        match self {
            HostBaseline::NaiveModel => "modelled",
            HostBaseline::MeasuredTuned => "measured",
        }
    }

    /// One-line description for table footers.
    pub fn describe(&self) -> &'static str {
        match self {
            HostBaseline::NaiveModel => {
                "host baseline: naive loop nest via vendor toolchain (paper's framing)"
            }
            HostBaseline::MeasuredTuned => {
                "host baseline: measured tuned kernel (naive vendor runs scaled by the \
                 headroom in BENCH_gemm.json / BENCH_gpu.json)"
            }
        }
    }
}

/// Table III for one precision: the efficiency matrix over (architecture
/// × portable-model family) plus the Φ_M aggregates.
#[derive(Debug, Clone)]
pub struct EfficiencyReport {
    /// The precision panel.
    pub precision: Precision,
    /// `e_i(a)` values; `None` where the model cannot run.
    pub matrix: EfficiencyMatrix,
    /// The host-side denominator these efficiencies were computed
    /// against.
    pub baseline: HostBaseline,
}

impl EfficiencyReport {
    /// Φ_M of one family (Eq. 1).
    pub fn phi(&self, family: ModelFamily) -> f64 {
        self.matrix.marowka_phi(family.label())
    }

    /// Pennycook PP of one family (the §V extension, experiment A3).
    pub fn pennycook(&self, family: ModelFamily) -> f64 {
        self.matrix.pennycook_pp(family.label())
    }
}

/// Computes the Table III panel for `precision` against the default
/// [`HostBaseline::MeasuredTuned`] denominator.
pub fn efficiency_table(precision: Precision, cfg: &StudyConfig) -> EfficiencyReport {
    efficiency_table_with(precision, cfg, HostBaseline::default())
}

/// Computes the Table III panel for `precision`: for every architecture,
/// run the vendor reference and each portable family, and record the
/// ratio of mean throughputs over the sweep (Eq. 2), with the host-side
/// denominator chosen by `baseline`.
pub fn efficiency_table_with(
    precision: Precision,
    cfg: &StudyConfig,
    baseline: HostBaseline,
) -> EfficiencyReport {
    let platforms: Vec<String> = Arch::ALL.iter().map(|a| a.table_label().into()).collect();
    let models: Vec<String> = ModelFamily::ALL.iter().map(|f| f.label().into()).collect();
    let mut matrix = EfficiencyMatrix::new(platforms, models);

    for arch in Arch::ALL {
        let sizes = cfg.sizes_for(arch).to_vec();
        let vendor = ProgModel::vendor_reference(arch);
        let vendor_result = run_experiment(&with_cfg(
            Experiment::new(arch, vendor, precision, sizes.clone()),
            cfg,
        ))
        .expect("vendor reference must run");
        let headroom = baseline.headroom(arch, precision);

        for family in ModelFamily::ALL {
            let model = family.concrete(arch);
            let exp = with_cfg(Experiment::new(arch, model, precision, sizes.clone()), cfg);
            if let Ok(result) = run_experiment(&exp) {
                // Mean of per-size ratios, matching how the paper's
                // single-number efficiencies summarise the curves.
                let mut ratios = Vec::new();
                for p in &result.points {
                    if let Some(v) = vendor_result.at(p.n) {
                        if v.gflops > 0.0 {
                            ratios.push(p.gflops / (v.gflops * headroom));
                        }
                    }
                }
                if !ratios.is_empty() {
                    let e = ratios.iter().sum::<f64>() / ratios.len() as f64;
                    matrix.set(arch.table_label(), family.label(), e);
                }
            }
        }
    }

    EfficiencyReport {
        precision,
        matrix,
        baseline,
    }
}

/// Per-size efficiency rows for one figure panel: every curve divided
/// by the reference curve times the baseline headroom — Eq. 2 applied
/// size-by-size instead of summarised into one Table III cell. The GPU
/// figure binaries print this beneath Figs. 6–7 so the division is by
/// the *measured* vendor stand-in (tiled / tensor-core simulator
/// headroom, `BENCH_gpu.json`) by default, not the naive modelled
/// reference.
#[derive(Debug, Clone)]
pub struct FigureEfficiency {
    /// The curve standing in the denominator.
    pub reference: ProgModel,
    /// Whether `reference` is the architecture's vendor model. `false`
    /// on the FP16 panels, where the vendor reference does not run
    /// (paper §IV.B) and the panel's leading curve stands in.
    pub reference_is_vendor: bool,
    /// The denominator multiplier applied to the reference curve.
    pub headroom: f64,
    /// Which vendor framing produced `headroom`.
    pub baseline: HostBaseline,
    /// The sweep sizes, aligned with each row's entries.
    pub sizes: Vec<usize>,
    /// One row per panel curve; `None` where the model cannot run or a
    /// size is missing.
    pub rows: Vec<(ProgModel, Vec<Option<f64>>)>,
}

/// Computes the per-size efficiency rows behind one figure panel, or
/// `None` when no reference curve can run at all (an empty spec).
pub fn figure_efficiency(
    spec: &crate::study::FigureSpec,
    cfg: &StudyConfig,
    baseline: HostBaseline,
) -> Option<FigureEfficiency> {
    let sizes = cfg.sizes_for(spec.arch).to_vec();
    let vendor = ProgModel::vendor_reference(spec.arch);
    let (reference, reference_is_vendor) =
        if perfport_models::support(vendor, spec.arch, spec.precision).runs() {
            (vendor, true)
        } else {
            (*spec.models.first()?, false)
        };
    let ref_result = run_experiment(&with_cfg(
        Experiment::new(spec.arch, reference, spec.precision, sizes.clone()),
        cfg,
    ))
    .ok()?;
    let headroom = baseline.headroom(spec.arch, spec.precision);
    let rows = spec
        .models
        .iter()
        .map(|&model| {
            let exp = with_cfg(
                Experiment::new(spec.arch, model, spec.precision, sizes.clone()),
                cfg,
            );
            let per_size: Vec<Option<f64>> = match run_experiment(&exp) {
                Ok(result) => sizes
                    .iter()
                    .map(|&n| match (result.at(n), ref_result.at(n)) {
                        (Some(p), Some(v)) if v.gflops > 0.0 => {
                            Some(p.gflops / (v.gflops * headroom))
                        }
                        _ => None,
                    })
                    .collect(),
                Err(_) => vec![None; sizes.len()],
            };
            (model, per_size)
        })
        .collect();
    Some(FigureEfficiency {
        reference,
        reference_is_vendor,
        headroom,
        baseline,
        sizes,
        rows,
    })
}

fn with_cfg(mut e: Experiment, cfg: &StudyConfig) -> Experiment {
    e.reps = cfg.reps;
    e.seed = cfg.seed;
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table III values for cross-checking.
    fn paper_table(precision: Precision) -> Vec<(Arch, ModelFamily, Option<f64>)> {
        use Arch::*;
        use ModelFamily::*;
        match precision {
            Precision::Double => vec![
                (Epyc7A53, Kokkos, Some(0.994)),
                (Epyc7A53, Julia, Some(0.912)),
                (Epyc7A53, PythonNumba, Some(0.550)),
                (AmpereAltra, Kokkos, Some(0.854)),
                (AmpereAltra, Julia, Some(0.907)),
                (AmpereAltra, PythonNumba, Some(0.713)),
                (Mi250x, Kokkos, Some(0.842)),
                (Mi250x, Julia, Some(0.903)),
                (Mi250x, PythonNumba, None),
                (A100, Kokkos, Some(0.260)),
                (A100, Julia, Some(0.867)),
                (A100, PythonNumba, Some(0.130)),
            ],
            Precision::Single => vec![
                (Epyc7A53, Kokkos, Some(1.014)),
                (Epyc7A53, Julia, Some(0.976)),
                (Epyc7A53, PythonNumba, Some(0.655)),
                (AmpereAltra, Kokkos, Some(0.836)),
                (AmpereAltra, Julia, Some(0.900)),
                (AmpereAltra, PythonNumba, Some(0.400)),
                (Mi250x, Kokkos, Some(0.677)),
                (Mi250x, Julia, Some(1.050)),
                (Mi250x, PythonNumba, None),
                (A100, Kokkos, Some(0.208)),
                (A100, Julia, Some(0.600)),
                (A100, PythonNumba, Some(0.095)),
            ],
            Precision::Half => vec![],
        }
    }

    /// The Table III cross-check tests run against
    /// [`HostBaseline::NaiveModel`]: the paper's published numbers divide
    /// by the naive loop nest compiled with the vendor toolchain, so that
    /// is the denominator they can be compared to. The default
    /// `MeasuredTuned` baseline deliberately reports *lower* CPU
    /// efficiencies (see `measured_baseline_scales_every_row_down`).
    fn naive_table(precision: Precision) -> EfficiencyReport {
        efficiency_table_with(precision, &StudyConfig::quick(), HostBaseline::NaiveModel)
    }

    #[test]
    fn double_precision_efficiencies_track_table_iii() {
        let report = naive_table(Precision::Double);
        for (arch, family, expected) in paper_table(Precision::Double) {
            let got = report.matrix.get(arch.table_label(), family.label());
            match expected {
                None => assert!(got.is_none(), "{family} on {arch} should be absent"),
                Some(e) => {
                    let g = got.unwrap_or_else(|| panic!("{family} on {arch} missing"));
                    // Model mechanisms + noise put us within a few percent
                    // of the paper's measured value.
                    assert!(
                        (g - e).abs() < 0.08,
                        "{family} on {arch}: modelled {g:.3}, paper {e:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_precision_efficiencies_track_table_iii() {
        let report = naive_table(Precision::Single);
        for (arch, family, expected) in paper_table(Precision::Single) {
            let got = report.matrix.get(arch.table_label(), family.label());
            match expected {
                None => assert!(got.is_none()),
                Some(e) => {
                    let g = got.unwrap();
                    assert!(
                        (g - e).abs() < 0.10,
                        "{family} on {arch}: modelled {g:.3}, paper {e:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn phi_ordering_matches_the_paper() {
        // Julia > Kokkos > Python/Numba in both precisions (paper §V).
        // The ordering is invariant under the host-baseline choice (a
        // per-architecture rescaling), so check it in both modes.
        for precision in [Precision::Double, Precision::Single] {
            for baseline in [HostBaseline::NaiveModel, HostBaseline::MeasuredTuned] {
                let r = efficiency_table_with(precision, &StudyConfig::quick(), baseline);
                let julia = r.phi(ModelFamily::Julia);
                let kokkos = r.phi(ModelFamily::Kokkos);
                let numba = r.phi(ModelFamily::PythonNumba);
                assert!(julia > kokkos, "{precision}: {julia} vs {kokkos}");
                assert!(kokkos > numba, "{precision}: {kokkos} vs {numba}");
            }
        }
    }

    #[test]
    fn phi_values_match_table_iii_aggregates() {
        let d = naive_table(Precision::Double);
        assert!((d.phi(ModelFamily::Kokkos) - 0.738).abs() < 0.05);
        assert!((d.phi(ModelFamily::Julia) - 0.897).abs() < 0.05);
        assert!((d.phi(ModelFamily::PythonNumba) - 0.348).abs() < 0.05);
    }

    #[test]
    fn pennycook_pp_zeroes_numba() {
        let d = naive_table(Precision::Double);
        assert_eq!(d.pennycook(ModelFamily::PythonNumba), 0.0);
        assert!(d.pennycook(ModelFamily::Julia) > 0.8);
        // Harmonic vs arithmetic: Kokkos' A100 outlier drags PP far below
        // Φ_M.
        assert!(d.pennycook(ModelFamily::Kokkos) < d.phi(ModelFamily::Kokkos) - 0.1);
    }

    #[test]
    fn measured_baseline_scales_every_row_down() {
        use perfport_models::vendor_headroom;
        let naive = naive_table(Precision::Double);
        let tuned = efficiency_table_with(
            Precision::Double,
            &StudyConfig::quick(),
            HostBaseline::MeasuredTuned,
        );
        assert_eq!(tuned.baseline, HostBaseline::MeasuredTuned);
        for arch in Arch::ALL {
            let h = vendor_headroom(arch, Precision::Double).value;
            for family in ModelFamily::ALL {
                let (Some(en), Some(et)) = (
                    naive.matrix.get(arch.table_label(), family.label()),
                    tuned.matrix.get(arch.table_label(), family.label()),
                ) else {
                    continue;
                };
                // Every row drops by exactly its measured headroom — the
                // CPU rows by the tuned-kernel ratio, the GPU rows by the
                // tiled/tensor-core simulator ratio.
                assert!(
                    (et - en / h).abs() < 1e-12,
                    "{family} on {arch}: naive {en}, tuned {et}, headroom {h}"
                );
                assert!(et < en, "{family} on {arch} must drop");
            }
        }
    }

    fn spec(id: &str) -> crate::study::FigureSpec {
        crate::study::figure_specs()
            .into_iter()
            .find(|s| s.id == id)
            .unwrap()
    }

    #[test]
    fn figure_efficiency_divides_by_the_vendor_curve_times_headroom() {
        let cfg = StudyConfig::quick();
        let eff = figure_efficiency(&spec("fig7a"), &cfg, HostBaseline::MeasuredTuned)
            .expect("fig7a has a vendor curve");
        assert_eq!(eff.reference, ProgModel::vendor_reference(Arch::A100));
        assert!(eff.reference_is_vendor);
        assert_eq!(eff.sizes, cfg.gpu_sizes);
        assert_eq!(eff.rows.len(), 4);
        let h = vendor_headroom(Arch::A100, Precision::Double).value;
        assert_eq!(eff.headroom, h);
        // The vendor curve divided by itself times the headroom is
        // exactly 1/headroom at every size: the naive-vs-tiled gap.
        let (model, vendor_row) = &eff.rows[0];
        assert_eq!(*model, eff.reference);
        for e in vendor_row {
            let e = e.expect("vendor runs at every size");
            assert!((e - 1.0 / h).abs() < 1e-12, "{e} vs 1/{h}");
        }
        // Every measured efficiency sits well below the flattering
        // naive-vs-naive framing.
        let naive = figure_efficiency(&spec("fig7a"), &cfg, HostBaseline::NaiveModel).unwrap();
        for (m, row) in &eff.rows {
            let nrow = &naive.rows.iter().find(|(nm, _)| nm == m).unwrap().1;
            for (e, ne) in row.iter().zip(nrow.iter()) {
                if let (Some(e), Some(ne)) = (e, ne) {
                    assert!((e - ne / h).abs() < 1e-12, "{m}: {e} vs {ne}/{h}");
                }
            }
        }
    }

    #[test]
    fn fp16_panels_fall_back_to_the_leading_curve() {
        // CUDA/HIP do not run at FP16 (support matrix), so the panel's
        // first model stands in the denominator and is flagged as such.
        let cfg = StudyConfig::quick();
        let eff = figure_efficiency(&spec("fig7c"), &cfg, HostBaseline::MeasuredTuned)
            .expect("fig7c still has curves");
        assert!(!eff.reference_is_vendor);
        assert_eq!(eff.reference, ProgModel::JuliaCudaJl);
        let h = vendor_headroom(Arch::A100, Precision::Half).value;
        assert_eq!(eff.headroom, h);
        let (_, julia_row) = &eff.rows[0];
        for e in julia_row {
            let e = e.expect("julia runs FP16 everywhere");
            assert!((e - 1.0 / h).abs() < 1e-12);
        }
    }
}
