//! Efficiency analysis: regenerating Table III.

use crate::experiment::Experiment;
use crate::runner::run_experiment;
use crate::study::StudyConfig;
use perfport_machines::Precision;
use perfport_metrics::EfficiencyMatrix;
use perfport_models::{Arch, ModelFamily, ProgModel};

/// Table III for one precision: the efficiency matrix over (architecture
/// × portable-model family) plus the Φ_M aggregates.
#[derive(Debug, Clone)]
pub struct EfficiencyReport {
    /// The precision panel.
    pub precision: Precision,
    /// `e_i(a)` values; `None` where the model cannot run.
    pub matrix: EfficiencyMatrix,
}

impl EfficiencyReport {
    /// Φ_M of one family (Eq. 1).
    pub fn phi(&self, family: ModelFamily) -> f64 {
        self.matrix.marowka_phi(family.label())
    }

    /// Pennycook PP of one family (the §V extension, experiment A3).
    pub fn pennycook(&self, family: ModelFamily) -> f64 {
        self.matrix.pennycook_pp(family.label())
    }
}

/// Computes the Table III panel for `precision`: for every architecture,
/// run the vendor reference and each portable family, and record the
/// ratio of mean throughputs over the sweep (Eq. 2).
pub fn efficiency_table(precision: Precision, cfg: &StudyConfig) -> EfficiencyReport {
    let platforms: Vec<String> = Arch::ALL.iter().map(|a| a.table_label().into()).collect();
    let models: Vec<String> = ModelFamily::ALL.iter().map(|f| f.label().into()).collect();
    let mut matrix = EfficiencyMatrix::new(platforms, models);

    for arch in Arch::ALL {
        let sizes = cfg.sizes_for(arch).to_vec();
        let vendor = ProgModel::vendor_reference(arch);
        let vendor_result = run_experiment(&with_cfg(
            Experiment::new(arch, vendor, precision, sizes.clone()),
            cfg,
        ))
        .expect("vendor reference must run");

        for family in ModelFamily::ALL {
            let model = family.concrete(arch);
            let exp = with_cfg(Experiment::new(arch, model, precision, sizes.clone()), cfg);
            if let Ok(result) = run_experiment(&exp) {
                // Mean of per-size ratios, matching how the paper's
                // single-number efficiencies summarise the curves.
                let mut ratios = Vec::new();
                for p in &result.points {
                    if let Some(v) = vendor_result.at(p.n) {
                        if v.gflops > 0.0 {
                            ratios.push(p.gflops / v.gflops);
                        }
                    }
                }
                if !ratios.is_empty() {
                    let e = ratios.iter().sum::<f64>() / ratios.len() as f64;
                    matrix.set(arch.table_label(), family.label(), e);
                }
            }
        }
    }

    EfficiencyReport { precision, matrix }
}

fn with_cfg(mut e: Experiment, cfg: &StudyConfig) -> Experiment {
    e.reps = cfg.reps;
    e.seed = cfg.seed;
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table III values for cross-checking.
    fn paper_table(precision: Precision) -> Vec<(Arch, ModelFamily, Option<f64>)> {
        use Arch::*;
        use ModelFamily::*;
        match precision {
            Precision::Double => vec![
                (Epyc7A53, Kokkos, Some(0.994)),
                (Epyc7A53, Julia, Some(0.912)),
                (Epyc7A53, PythonNumba, Some(0.550)),
                (AmpereAltra, Kokkos, Some(0.854)),
                (AmpereAltra, Julia, Some(0.907)),
                (AmpereAltra, PythonNumba, Some(0.713)),
                (Mi250x, Kokkos, Some(0.842)),
                (Mi250x, Julia, Some(0.903)),
                (Mi250x, PythonNumba, None),
                (A100, Kokkos, Some(0.260)),
                (A100, Julia, Some(0.867)),
                (A100, PythonNumba, Some(0.130)),
            ],
            Precision::Single => vec![
                (Epyc7A53, Kokkos, Some(1.014)),
                (Epyc7A53, Julia, Some(0.976)),
                (Epyc7A53, PythonNumba, Some(0.655)),
                (AmpereAltra, Kokkos, Some(0.836)),
                (AmpereAltra, Julia, Some(0.900)),
                (AmpereAltra, PythonNumba, Some(0.400)),
                (Mi250x, Kokkos, Some(0.677)),
                (Mi250x, Julia, Some(1.050)),
                (Mi250x, PythonNumba, None),
                (A100, Kokkos, Some(0.208)),
                (A100, Julia, Some(0.600)),
                (A100, PythonNumba, Some(0.095)),
            ],
            Precision::Half => vec![],
        }
    }

    #[test]
    fn double_precision_efficiencies_track_table_iii() {
        let report = efficiency_table(Precision::Double, &StudyConfig::quick());
        for (arch, family, expected) in paper_table(Precision::Double) {
            let got = report.matrix.get(arch.table_label(), family.label());
            match expected {
                None => assert!(got.is_none(), "{family} on {arch} should be absent"),
                Some(e) => {
                    let g = got.unwrap_or_else(|| panic!("{family} on {arch} missing"));
                    // Model mechanisms + noise put us within a few percent
                    // of the paper's measured value.
                    assert!(
                        (g - e).abs() < 0.08,
                        "{family} on {arch}: modelled {g:.3}, paper {e:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_precision_efficiencies_track_table_iii() {
        let report = efficiency_table(Precision::Single, &StudyConfig::quick());
        for (arch, family, expected) in paper_table(Precision::Single) {
            let got = report.matrix.get(arch.table_label(), family.label());
            match expected {
                None => assert!(got.is_none()),
                Some(e) => {
                    let g = got.unwrap();
                    assert!(
                        (g - e).abs() < 0.10,
                        "{family} on {arch}: modelled {g:.3}, paper {e:.3}"
                    );
                }
            }
        }
    }

    #[test]
    fn phi_ordering_matches_the_paper() {
        // Julia > Kokkos > Python/Numba in both precisions (paper §V).
        for precision in [Precision::Double, Precision::Single] {
            let r = efficiency_table(precision, &StudyConfig::quick());
            let julia = r.phi(ModelFamily::Julia);
            let kokkos = r.phi(ModelFamily::Kokkos);
            let numba = r.phi(ModelFamily::PythonNumba);
            assert!(julia > kokkos, "{precision}: {julia} vs {kokkos}");
            assert!(kokkos > numba, "{precision}: {kokkos} vs {numba}");
        }
    }

    #[test]
    fn phi_values_match_table_iii_aggregates() {
        let d = efficiency_table(Precision::Double, &StudyConfig::quick());
        assert!((d.phi(ModelFamily::Kokkos) - 0.738).abs() < 0.05);
        assert!((d.phi(ModelFamily::Julia) - 0.897).abs() < 0.05);
        assert!((d.phi(ModelFamily::PythonNumba) - 0.348).abs() < 0.05);
    }

    #[test]
    fn pennycook_pp_zeroes_numba() {
        let d = efficiency_table(Precision::Double, &StudyConfig::quick());
        assert_eq!(d.pennycook(ModelFamily::PythonNumba), 0.0);
        assert!(d.pennycook(ModelFamily::Julia) > 0.8);
        // Harmonic vs arithmetic: Kokkos' A100 outlier drags PP far below
        // Φ_M.
        assert!(d.pennycook(ModelFamily::Kokkos) < d.phi(ModelFamily::Kokkos) - 0.1);
    }
}
