//! The study registry: one spec per paper artifact.

use crate::experiment::{Experiment, ExperimentResult, RunError};
use crate::runner::run_experiment;
use perfport_machines::Precision;
use perfport_models::{Arch, ProgModel};

/// Sweep configuration shared by all artifacts.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Matrix sizes for the CPU figures (Figs. 4–5).
    pub cpu_sizes: Vec<usize>,
    /// Matrix sizes for the GPU figures (Figs. 6–7); the paper's appendix
    /// sweeps 4096..20480.
    pub gpu_sizes: Vec<usize>,
    /// Timed repetitions per size.
    pub reps: usize,
    /// Base seed for inputs and noise.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            cpu_sizes: vec![512, 1024, 2048, 4096, 6144, 8192],
            gpu_sizes: vec![4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432, 20480],
            reps: 5,
            seed: 0x5EED,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for tests and quick demos.
    pub fn quick() -> Self {
        StudyConfig {
            cpu_sizes: vec![1024, 4096],
            gpu_sizes: vec![4096, 8192],
            reps: 2,
            seed: 0x5EED,
        }
    }

    /// The sweep sizes for an architecture.
    pub fn sizes_for(&self, arch: Arch) -> &[usize] {
        if arch.is_gpu() {
            &self.gpu_sizes
        } else {
            &self.cpu_sizes
        }
    }
}

/// A figure (or sub-figure) of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Identifier, e.g. `"fig6b"`.
    pub id: &'static str,
    /// Caption paraphrase.
    pub title: &'static str,
    /// The architecture the figure measures.
    pub arch: Arch,
    /// The precision panel.
    pub precision: Precision,
    /// Curves, vendor reference first.
    pub models: Vec<ProgModel>,
}

impl FigureSpec {
    /// Builds the experiments behind this figure.
    pub fn experiments(&self, cfg: &StudyConfig) -> Vec<Experiment> {
        self.models
            .iter()
            .map(|&model| {
                let mut e = Experiment::new(
                    self.arch,
                    model,
                    self.precision,
                    cfg.sizes_for(self.arch).to_vec(),
                );
                e.reps = cfg.reps;
                e.seed = cfg.seed;
                e
            })
            .collect()
    }

    /// Runs every curve, keeping unsupported models as errors (rendered
    /// as gaps, exactly as the paper omits them).
    pub fn run(&self, cfg: &StudyConfig) -> Vec<(ProgModel, Result<ExperimentResult, RunError>)> {
        let mut sp = perfport_trace::span("study", "figure");
        if sp.is_recording() {
            sp.arg("id", self.id);
            sp.arg("arch", format!("{:?}", self.arch));
            sp.arg("precision", format!("{:?}", self.precision));
            sp.arg("curves", self.models.len());
        }
        self.experiments(cfg)
            .iter()
            .map(|e| (e.model, run_experiment(e)))
            .collect()
    }
}

/// All eleven figure panels of the paper's evaluation (Figs. 4–7).
pub fn figure_specs() -> Vec<FigureSpec> {
    use Precision::*;
    use ProgModel::*;
    let cpu = |id, title, arch, precision| FigureSpec {
        id,
        title,
        arch,
        precision,
        models: vec![COpenMp, KokkosOpenMp, JuliaThreads, NumbaParallel],
    };
    vec![
        cpu(
            "fig4a",
            "Crusher CPU GEMM, FP64, 64 threads / 4 NUMA",
            Arch::Epyc7A53,
            Double,
        ),
        cpu(
            "fig4b",
            "Crusher CPU GEMM, FP32, 64 threads / 4 NUMA",
            Arch::Epyc7A53,
            Single,
        ),
        cpu(
            "fig5a",
            "Wombat CPU GEMM, FP64, 80 threads",
            Arch::AmpereAltra,
            Double,
        ),
        cpu(
            "fig5b",
            "Wombat CPU GEMM, FP32, 80 threads",
            Arch::AmpereAltra,
            Single,
        ),
        FigureSpec {
            id: "fig5c",
            title: "Wombat CPU GEMM, Julia FP16",
            arch: Arch::AmpereAltra,
            precision: Half,
            models: vec![JuliaThreads],
        },
        FigureSpec {
            id: "fig6a",
            title: "Crusher MI250X GEMM, FP64, 32x32 blocks",
            arch: Arch::Mi250x,
            precision: Double,
            models: vec![Hip, KokkosHip, JuliaAmdGpu],
        },
        FigureSpec {
            id: "fig6b",
            title: "Crusher MI250X GEMM, FP32, 32x32 blocks",
            arch: Arch::Mi250x,
            precision: Single,
            models: vec![Hip, KokkosHip, JuliaAmdGpu],
        },
        FigureSpec {
            id: "fig6c",
            title: "Crusher MI250X GEMM, Julia FP16 inputs (FP32 store)",
            arch: Arch::Mi250x,
            precision: Half,
            models: vec![JuliaAmdGpu],
        },
        FigureSpec {
            id: "fig7a",
            title: "Wombat A100 GEMM, FP64, 32x32 blocks",
            arch: Arch::A100,
            precision: Double,
            models: vec![Cuda, KokkosCuda, JuliaCudaJl, NumbaCuda],
        },
        FigureSpec {
            id: "fig7b",
            title: "Wombat A100 GEMM, FP32, 32x32 blocks",
            arch: Arch::A100,
            precision: Single,
            models: vec![Cuda, KokkosCuda, JuliaCudaJl, NumbaCuda],
        },
        FigureSpec {
            id: "fig7c",
            title: "Wombat A100 GEMM, FP16 (Julia and Numba)",
            arch: Arch::A100,
            precision: Half,
            models: vec![JuliaCudaJl, NumbaCuda],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_panels_are_registered() {
        let specs = figure_specs();
        assert_eq!(specs.len(), 11);
        let ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        for id in [
            "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7a",
            "fig7b", "fig7c",
        ] {
            assert!(ids.contains(&id), "{id} missing");
        }
    }

    #[test]
    fn specs_lead_with_the_vendor_reference() {
        for spec in figure_specs() {
            let first = spec.models[0];
            // FP16 panels have no vendor curve (unsupported), so skip.
            if spec.precision != Precision::Half {
                assert_eq!(first, ProgModel::vendor_reference(spec.arch), "{}", spec.id);
            }
        }
    }

    #[test]
    fn experiments_inherit_the_config() {
        let cfg = StudyConfig::quick();
        let spec = &figure_specs()[0];
        let exps = spec.experiments(&cfg);
        assert_eq!(exps.len(), spec.models.len());
        for e in &exps {
            assert_eq!(e.sizes, cfg.cpu_sizes);
            assert_eq!(e.reps, cfg.reps);
        }
    }

    #[test]
    fn sizes_dispatch_by_device() {
        let cfg = StudyConfig::default();
        assert_eq!(cfg.sizes_for(Arch::Epyc7A53), cfg.cpu_sizes.as_slice());
        assert_eq!(cfg.sizes_for(Arch::A100), cfg.gpu_sizes.as_slice());
        assert_eq!(*cfg.gpu_sizes.last().unwrap(), 20480);
    }

    #[test]
    fn fig7a_runs_all_four_curves() {
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig7a")
            .unwrap();
        let rows = spec.run(&cfg);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn fig6_panels_omit_numba() {
        // Numba is absent from the MI250X figures (deprecated backend).
        for spec in figure_specs() {
            if spec.arch == Arch::Mi250x {
                assert!(!spec.models.contains(&ProgModel::NumbaCuda), "{}", spec.id);
            }
        }
    }
}
