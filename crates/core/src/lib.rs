//! Experiment orchestration: the study itself.
//!
//! This crate glues the substrates together into the paper's
//! methodology:
//!
//! 1. every (architecture, model, precision) combination is checked
//!    against the support matrix (`perfport-models`);
//! 2. the kernel is **functionally executed and verified** — CPU kernels
//!    on the real `perfport-pool` runtime, GPU kernels on the
//!    `perfport-gpusim` SIMT simulator — against the `f64` reference;
//! 3. the simulator counters and analytic footprints are scaled to the
//!    target matrix sizes and fed to the `perfport-machines` timing
//!    models together with the model profile (pinning, overheads,
//!    calibrated codegen efficiency);
//! 4. repetitions are timed with deterministic run-to-run noise, the
//!    JIT warm-up repetition is excluded exactly as the paper describes
//!    (§IV), and the mean throughput is reported;
//! 5. per-architecture efficiencies and the Φ_M portability metric are
//!    aggregated into Table III ([`analysis`]), and every figure/table
//!    has a registered spec ([`study`]) that the `perfport-bench`
//!    binaries render ([`tables`]).

pub mod analysis;
pub mod counters;
pub mod experiment;
pub mod noise;
pub mod report;
pub mod runner;
pub mod scaling;
pub mod shard;
pub mod stream;
pub mod study;
pub mod tables;

pub use analysis::{
    efficiency_table, efficiency_table_with, figure_efficiency, EfficiencyReport, FigureEfficiency,
    HostBaseline,
};
pub use experiment::{Experiment, ExperimentResult, RunError, SizePoint};
pub use report::{render_report, reproduction_report, Anchor};
pub use runner::run_experiment;
pub use scaling::{run_scaling, ScalingResult, ScalingStudy};
pub use shard::{
    full_study_grid, render_study_csv, run_grid_point, run_study_sharded, study_grid, GridPoint,
    PointResult, PointRun, Shard, STUDY_CSV_HEADER,
};
pub use stream::{estimate_stream_bandwidth, run_stream_kernel, StreamKernel};
pub use study::{figure_specs, FigureSpec, StudyConfig};
pub use tables::{
    render_csv, render_efficiency, render_efficiency_csv, render_figure, render_table3,
};
