//! Rendering: ASCII figures/tables and CSV, as the bench binaries print
//! them.

use crate::analysis::{EfficiencyReport, FigureEfficiency};
use crate::experiment::{ExperimentResult, RunError};
use perfport_models::{ModelFamily, ProgModel};

/// Renders a figure as an aligned text table: one row per matrix size,
/// one column per model (GFLOP/s). Unsupported models render as `-`.
pub fn render_figure(
    title: &str,
    rows: &[(ProgModel, Result<ExperimentResult, RunError>)],
) -> String {
    let sizes = rows
        .iter()
        .find_map(|(_, r)| r.as_ref().ok())
        .map(|r| r.points.iter().map(|p| p.n).collect::<Vec<_>>())
        .unwrap_or_default();

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>8}", "N"));
    for (model, _) in rows {
        out.push_str(&format!("  {:>16}", model.name()));
    }
    out.push('\n');
    for &n in &sizes {
        out.push_str(&format!("{n:>8}"));
        for (_, result) in rows {
            match result {
                Ok(r) => match r.at(n) {
                    Some(p) => out.push_str(&format!("  {:>16.1}", p.gflops)),
                    None => out.push_str(&format!("  {:>16}", "-")),
                },
                Err(_) => out.push_str(&format!("  {:>16}", "-")),
            }
        }
        out.push('\n');
    }
    for (model, result) in rows {
        if let Err(RunError::Unsupported { reason, .. }) = result {
            out.push_str(&format!("  note: {} — {}\n", model.name(), reason));
        }
        if let Ok(r) = result {
            if let Some(note) = &r.support_note {
                out.push_str(&format!("  note: {} — {}\n", model.name(), note));
            }
        }
    }
    out
}

/// Renders the same data as CSV (`n,model1,model2,...`; empty cells for
/// unsupported models).
pub fn render_csv(rows: &[(ProgModel, Result<ExperimentResult, RunError>)]) -> String {
    let sizes = rows
        .iter()
        .find_map(|(_, r)| r.as_ref().ok())
        .map(|r| r.points.iter().map(|p| p.n).collect::<Vec<_>>())
        .unwrap_or_default();

    let mut out = String::from("n");
    for (model, _) in rows {
        out.push(',');
        out.push_str(model.name());
    }
    out.push('\n');
    for &n in &sizes {
        out.push_str(&n.to_string());
        for (_, result) in rows {
            out.push(',');
            if let Ok(r) = result {
                if let Some(p) = r.at(n) {
                    out.push_str(&format!("{:.2}", p.gflops));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the per-size efficiency block the GPU figure binaries print
/// beneath each panel: every curve divided by the reference curve times
/// the committed vendor headroom (see
/// [`crate::analysis::figure_efficiency`]).
pub fn render_efficiency(eff: &FigureEfficiency) -> String {
    let mut out = format!(
        "efficiency vs {} vendor baseline ({} x {:.2} headroom)\n",
        eff.baseline.label(),
        eff.reference.name(),
        eff.headroom
    );
    out.push_str(&format!("{:>8}", "N"));
    for (model, _) in &eff.rows {
        out.push_str(&format!("  {:>16}", model.name()));
    }
    out.push('\n');
    for (i, &n) in eff.sizes.iter().enumerate() {
        out.push_str(&format!("{n:>8}"));
        for (_, row) in &eff.rows {
            match row.get(i).copied().flatten() {
                Some(e) => out.push_str(&format!("  {e:>16.3}")),
                None => out.push_str(&format!("  {:>16}", "-")),
            }
        }
        out.push('\n');
    }
    if !eff.reference_is_vendor {
        out.push_str(&format!(
            "  note: no vendor curve at this precision; {} stands in the denominator\n",
            eff.reference.name()
        ));
    }
    out
}

/// The same efficiency block as CSV. The leading `# baseline:` comment
/// stamps which vendor framing (`measured` or `modelled`) divided the
/// rows, so a plotted artifact carries its denominator's provenance.
pub fn render_efficiency_csv(eff: &FigureEfficiency) -> String {
    let mut out = format!(
        "# baseline: {} (reference {} x {:.2} headroom)\nn",
        eff.baseline.label(),
        eff.reference.name(),
        eff.headroom
    );
    for (model, _) in &eff.rows {
        out.push(',');
        out.push_str(model.name());
    }
    out.push('\n');
    for (i, &n) in eff.sizes.iter().enumerate() {
        out.push_str(&n.to_string());
        for (_, row) in &eff.rows {
            out.push(',');
            if let Some(e) = row.get(i).copied().flatten() {
                out.push_str(&format!("{e:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders Table III: per-architecture efficiencies and Φ_M per
/// precision panel, plus the Pennycook PP extension column block.
pub fn render_table3(reports: &[EfficiencyReport]) -> String {
    let mut out = String::new();
    out.push_str("Table III: Performance efficiency of Kokkos, Julia, and Python/Numba\n");
    for report in reports {
        out.push_str(&format!("\n  {} precision\n", report.precision));
        out.push_str(&format!("  {:<16}", "Architecture"));
        for f in ModelFamily::ALL {
            out.push_str(&format!("  {:>14}", f.label()));
        }
        out.push('\n');
        for platform in report.matrix.platforms() {
            out.push_str(&format!("  e_{{{platform:<13}}}"));
            for f in ModelFamily::ALL {
                match report.matrix.get(platform, f.label()) {
                    Some(e) => out.push_str(&format!("  {e:>14.3}")),
                    None => out.push_str(&format!("  {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("  {:<16}", "Phi_M"));
        for f in ModelFamily::ALL {
            out.push_str(&format!("  {:>14.3}", report.phi(f)));
        }
        out.push('\n');
        out.push_str(&format!("  {:<16}", "PP (harmonic)"));
        for f in ModelFamily::ALL {
            out.push_str(&format!("  {:>14.3}", report.pennycook(f)));
        }
        out.push('\n');
    }
    if let Some(report) = reports.first() {
        out.push_str(&format!("\n  note: {}\n", report.baseline.describe()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{figure_specs, StudyConfig};
    use perfport_machines::Precision;

    #[test]
    fn figure_rendering_contains_all_models_and_sizes() {
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig7a")
            .unwrap();
        let rows = spec.run(&cfg);
        let text = render_figure(spec.title, &rows);
        assert!(text.contains("CUDA"));
        assert!(text.contains("Kokkos/CUDA"));
        assert!(text.contains("Numba CUDA"));
        assert!(text.contains("4096"));
        assert!(text.contains("8192"));
    }

    #[test]
    fn unsupported_models_render_as_dashes_with_a_note() {
        let cfg = StudyConfig::quick();
        // Force a figure containing Numba on MI250X.
        let spec = crate::study::FigureSpec {
            id: "test",
            title: "MI250X with Numba",
            arch: perfport_models::Arch::Mi250x,
            precision: Precision::Double,
            models: vec![ProgModel::Hip, ProgModel::NumbaCuda],
        };
        let rows = spec.run(&cfg);
        let text = render_figure(spec.title, &rows);
        assert!(text.contains('-'));
        assert!(text.contains("deprecated"));
    }

    #[test]
    fn csv_shape() {
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig6a")
            .unwrap();
        let rows = spec.run(&cfg);
        let csv = render_csv(&rows);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + cfg.gpu_sizes.len());
        assert!(lines[0].starts_with("n,HIP,"));
        for line in &lines[1..] {
            assert_eq!(line.matches(',').count(), rows.len());
        }
    }

    #[test]
    fn efficiency_block_carries_the_baseline_label() {
        use crate::analysis::{figure_efficiency, HostBaseline};
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig6a")
            .unwrap();
        let eff = figure_efficiency(&spec, &cfg, HostBaseline::MeasuredTuned).unwrap();
        let text = render_efficiency(&eff);
        assert!(text.starts_with("efficiency vs measured vendor baseline (HIP x 15.12"));
        assert!(text.contains("Kokkos/HIP"));
        let csv = render_efficiency_csv(&eff);
        assert!(csv.starts_with("# baseline: measured (reference HIP x 15.12 headroom)\n"));
        assert!(csv.lines().nth(1).unwrap().starts_with("n,HIP,"));
        // The modelled fallback framing is labeled as such.
        let modelled = figure_efficiency(&spec, &cfg, HostBaseline::NaiveModel).unwrap();
        assert!(render_efficiency_csv(&modelled).starts_with("# baseline: modelled"));
        assert!(render_efficiency(&modelled).starts_with("efficiency vs modelled"));
    }

    #[test]
    fn fp16_efficiency_block_flags_the_stand_in_reference() {
        use crate::analysis::{figure_efficiency, HostBaseline};
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig7c")
            .unwrap();
        let eff = figure_efficiency(&spec, &cfg, HostBaseline::MeasuredTuned).unwrap();
        let text = render_efficiency(&eff);
        assert!(text.contains("note: no vendor curve at this precision"));
        assert!(text.contains("stands in the denominator"));
    }

    #[test]
    fn table3_rendering_has_both_aggregates() {
        let cfg = StudyConfig::quick();
        let reports = vec![crate::analysis::efficiency_table(Precision::Double, &cfg)];
        let text = render_table3(&reports);
        assert!(text.contains("Phi_M"));
        assert!(text.contains("PP (harmonic)"));
        assert!(text.contains("e_{A100"));
        assert!(text.contains("FP64"));
        // Numba's MI250X gap renders as a dash.
        assert!(text.contains('-'));
        // The default report carries the measured-baseline footnote.
        assert!(text.contains("measured tuned kernel"));
    }
}
