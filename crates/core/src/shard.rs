//! Deterministic sharding of the study grid.
//!
//! The paper's evaluation is a grid of machine × model × precision ×
//! size points (Figs. 4–7), every one of them deterministic and
//! independent: the noise streams are seeded per point
//! ([`crate::noise`]) and functional verification depends only on the
//! (variant, precision, seed) combination. This module exploits that to
//! fan the grid out:
//!
//! * [`study_grid`] enumerates the grid behind a set of figure panels as
//!   stable [`GridPoint`]s in **canonical order** (panels in the order
//!   given, then curves in the panel's model order, then sizes in sweep
//!   order);
//! * [`Shard`] maps canonical indices to shards deterministically: shard
//!   `i` of `n` owns the contiguous index range
//!   `[⌊i·P/n⌋, ⌊(i+1)·P/n⌋)` of a `P`-point grid, so every point lands
//!   in exactly one shard for *any* `n` and concatenating the shards in
//!   index order reproduces the canonical order;
//! * [`run_study_sharded`] executes one shard's points — optionally in
//!   parallel across a `perfport-pool` worker team — and returns the
//!   results in canonical order;
//! * [`render_study_csv`] emits the canonical per-point CSV artifact.
//!
//! # The byte-identity contract
//!
//! For a fixed grid, concatenating the CSV emitted by shards `0/n`,
//! `1/n`, …, `n-1/n` (header on shard 0 only) is **byte-identical** to
//! the single-shot `0/1` artifact, for every `n` and every `jobs` count:
//! execution order and worker interleaving never reach the output
//! because results are collected per point and emitted in canonical
//! order after the join. The property tests in
//! `crates/core/tests/shard_props.rs` assert this for arbitrary
//! partitions of the quick grid.

use crate::experiment::{Experiment, RunError, SizePoint};
use crate::runner::run_experiment;
use crate::study::{figure_specs, StudyConfig};
use perfport_machines::Precision;
use perfport_models::{Arch, ProgModel};
use perfport_pool::{SchedMode, Schedule, ThreadPool};

/// One point of the study grid: a (figure, model, precision, size) cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridPoint {
    /// The figure panel this point belongs to, e.g. `"fig7a"`.
    pub figure: &'static str,
    /// The machine the panel measures.
    pub arch: Arch,
    /// The programming model of the curve.
    pub model: ProgModel,
    /// The precision panel.
    pub precision: Precision,
    /// Square matrix size.
    pub n: usize,
}

/// A shard selector: shard `index` of `count`, written `index/count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards, `>= 1`.
    pub count: usize,
}

impl Shard {
    /// The whole grid as a single shard (`0/1`): the single-shot run.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Parses the `i/n` syntax used by the `--shard` flag.
    ///
    /// ```
    /// use perfport_core::Shard;
    ///
    /// assert_eq!(Shard::parse("1/4"), Ok(Shard { index: 1, count: 4 }));
    /// assert!(Shard::parse("4/4").is_err());
    /// assert!(Shard::parse("1of4").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// A message naming the malformed part: not `i/n`, unparsable
    /// numbers, `n == 0`, or `i >= n`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let bad = || format!("invalid shard '{s}' (expected i/n with 0 <= i < n)");
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = i.trim().parse().map_err(|_| bad())?;
        let count: usize = n.trim().parse().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(Shard { index, count })
    }

    /// The contiguous canonical-index range this shard owns out of
    /// `total` grid points: `[⌊i·total/n⌋, ⌊(i+1)·total/n⌋)`.
    ///
    /// The floor-monotone endpoints tile `0..total` exactly, so every
    /// index lands in exactly one shard and shard sizes differ by at
    /// most one point.
    pub fn range(&self, total: usize) -> std::ops::Range<usize> {
        (self.index * total / self.count)..((self.index + 1) * total / self.count)
    }

    /// The shard owning canonical index `idx` of a `total`-point grid
    /// (the inverse of [`Shard::range`]).
    pub fn owner_of(idx: usize, total: usize, count: usize) -> usize {
        debug_assert!(idx < total);
        // ⌊i·total/count⌋ <= idx  ⟺  i <= idx·count/total (integer div
        // rounds the candidate down, so take the floor and it is exact).
        (idx * count + count - 1) / total.max(1)
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Enumerates the study grid behind the given figure panels in canonical
/// order: panels in the order given, then the panel's curves in model
/// order, then the configuration's sizes in sweep order.
///
/// # Panics
///
/// Panics on an unregistered figure id, like the figure binaries do.
pub fn study_grid(ids: &[&str], cfg: &StudyConfig) -> Vec<GridPoint> {
    let specs = figure_specs();
    let mut grid = Vec::new();
    for id in ids {
        let spec = specs
            .iter()
            .find(|s| s.id == *id)
            .unwrap_or_else(|| panic!("unknown figure id {id}"));
        for &model in &spec.models {
            for &n in cfg.sizes_for(spec.arch) {
                grid.push(GridPoint {
                    figure: spec.id,
                    arch: spec.arch,
                    model,
                    precision: spec.precision,
                    n,
                });
            }
        }
    }
    grid
}

/// Every panel of the paper's evaluation as one grid (Figs. 4–7).
pub fn full_study_grid(cfg: &StudyConfig) -> Vec<GridPoint> {
    let specs = figure_specs();
    let ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
    study_grid(&ids, cfg)
}

/// The measured outcome of one grid point.
#[derive(Debug, Clone)]
pub struct PointRun {
    /// The point's throughput sample.
    pub size: SizePoint,
    /// Worst relative error of the curve's functional verification.
    pub rel_err: f64,
    /// Documented-workaround note, when the combination is partial.
    pub note: Option<String>,
}

/// One grid point together with its outcome (unsupported combinations
/// are results too — the paper renders them as gaps).
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The grid point that ran.
    pub point: GridPoint,
    /// The outcome: a measurement, or why the combination cannot run.
    pub outcome: Result<PointRun, RunError>,
}

/// Runs one grid point and pairs it with its outcome — the unit of work
/// the distributed study service (`perfport-serve`) leases to workers:
/// a coordinator hands out contiguous canonical-index ranges and each
/// worker maps this function over its range, so the wire service and
/// the in-process sharded runner execute identical per-point code.
pub fn run_grid_point(p: &GridPoint, cfg: &StudyConfig) -> PointResult {
    PointResult {
        point: p.clone(),
        outcome: run_point(p, cfg),
    }
}

/// Runs one grid point as a single-size experiment.
fn run_point(p: &GridPoint, cfg: &StudyConfig) -> Result<PointRun, RunError> {
    let mut e = Experiment::new(p.arch, p.model, p.precision, vec![p.n]);
    e.reps = cfg.reps;
    e.seed = cfg.seed;
    let r = run_experiment(&e)?;
    let size = r
        .points
        .into_iter()
        .next()
        .expect("single-size experiment yields one point");
    Ok(PointRun {
        size,
        rel_err: r.verification_rel_err,
        note: r.support_note,
    })
}

/// Executes shard `shard` of the study grid behind `ids` across `jobs`
/// workers and returns its points' results **in canonical order**.
///
/// `jobs == 1` runs the shard serially on the calling thread; `jobs > 1`
/// fans the points out over a [`ThreadPool`] under the process-wide
/// scheduler verdict ([`perfport_pool::sched::active`]) — each point is
/// one work item; the grid is embarrassingly parallel. Either way the
/// returned order, and therefore any output rendered from it, is
/// independent of execution interleaving and of the scheduler.
pub fn run_study_sharded(
    ids: &[&str],
    cfg: &StudyConfig,
    shard: Shard,
    jobs: usize,
) -> Vec<PointResult> {
    run_study_sharded_with(ids, cfg, shard, jobs, perfport_pool::sched::active())
}

/// [`run_study_sharded`] with an explicit scheduler: `Barrier` fans
/// points out through `parallel_map` (one implicit end barrier per
/// shard), `Graph` runs them as independent task-graph tasks, so a slow
/// point (a big `n`) no longer idles finished workers at the join.
pub fn run_study_sharded_with(
    ids: &[&str],
    cfg: &StudyConfig,
    shard: Shard,
    jobs: usize,
    sched: SchedMode,
) -> Vec<PointResult> {
    let grid = study_grid(ids, cfg);
    let own = shard.range(grid.len());
    let points = &grid[own.clone()];
    let jobs = jobs.max(1);

    let mut sp = perfport_trace::span("study", "sharded");
    if sp.is_recording() {
        sp.arg("shard", shard.to_string());
        sp.arg("jobs", jobs);
        sp.arg("sched", sched.name());
        sp.arg("grid_points", grid.len());
        sp.arg("shard_points", points.len());
    }

    let outcomes: Vec<Result<PointRun, RunError>> = if jobs == 1 {
        points.iter().map(|p| run_point(p, cfg)).collect()
    } else {
        let pool = ThreadPool::new(jobs);
        match sched {
            SchedMode::Barrier => {
                pool.parallel_map(points.len(), Schedule::Dynamic { chunk: 1 }, |i| {
                    run_point(&points[i], cfg)
                })
            }
            SchedMode::Graph => pool.graph_map(points.len(), |i| run_point(&points[i], cfg)),
        }
    };

    points
        .iter()
        .zip(outcomes)
        .map(|(point, outcome)| PointResult {
            point: point.clone(),
            outcome,
        })
        .collect()
}

/// The header line of the canonical per-point study CSV.
pub const STUDY_CSV_HEADER: &str =
    "figure,arch,model,precision,n,gflops,seconds,bound,rel_err,status";

/// Renders shard results as the canonical per-point CSV artifact, one
/// line per grid point in canonical order.
///
/// `header` controls whether the [`STUDY_CSV_HEADER`] line is emitted;
/// the sharded binaries emit it on shard 0 only, so concatenating the
/// shards' stdout in index order reproduces the single-shot artifact
/// byte for byte. Unsupported combinations keep their row (empty
/// measurement cells, status `unsupported`) so every shard's line count
/// equals its point count.
pub fn render_study_csv(results: &[PointResult], header: bool) -> String {
    let mut out = String::new();
    if header {
        out.push_str(STUDY_CSV_HEADER);
        out.push('\n');
    }
    for r in results {
        let p = &r.point;
        out.push_str(&format!(
            "{},{:?},{:?},{},{},",
            p.figure,
            p.arch,
            p.model,
            p.precision.label(),
            p.n
        ));
        match &r.outcome {
            Ok(run) => out.push_str(&format!(
                "{:.3},{:.6e},{:?},{:.3e},ok\n",
                run.size.gflops, run.size.seconds, run.size.bound, run.rel_err
            )),
            Err(RunError::Unsupported { .. }) => out.push_str(",,,,unsupported\n"),
            Err(RunError::VerificationFailed(_)) => out.push_str(",,,,failed\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parse_round_trips_and_rejects_junk() {
        assert_eq!(Shard::parse("0/1"), Ok(Shard::FULL));
        assert_eq!(Shard::parse("2/5"), Ok(Shard { index: 2, count: 5 }));
        assert_eq!(Shard::parse("2/5").unwrap().to_string(), "2/5");
        for bad in [
            "", "1", "1/", "/2", "a/2", "1/b", "2/2", "3/2", "1/0", "-1/2",
        ] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn shard_ranges_tile_the_grid() {
        for total in [0usize, 1, 7, 44, 100] {
            for count in 1..=9 {
                let mut covered = 0;
                let mut next = 0;
                for index in 0..count {
                    let r = Shard { index, count }.range(total);
                    assert_eq!(r.start, next, "shard {index}/{count} of {total}");
                    next = r.end;
                    covered += r.len();
                }
                assert_eq!(next, total);
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn canonical_order_is_figure_then_model_then_size() {
        let cfg = StudyConfig::quick();
        let grid = study_grid(&["fig7a", "fig4a"], &cfg);
        // fig7a: 4 models × 2 GPU sizes, then fig4a: 4 models × 2 CPU sizes.
        assert_eq!(grid.len(), 16);
        assert!(grid[..8].iter().all(|p| p.figure == "fig7a"));
        assert!(grid[8..].iter().all(|p| p.figure == "fig4a"));
        assert_eq!(grid[0].model, ProgModel::Cuda);
        assert_eq!(grid[0].n, cfg.gpu_sizes[0]);
        assert_eq!(grid[1].n, cfg.gpu_sizes[1]);
        assert_eq!(grid[1].model, ProgModel::Cuda);
        assert_eq!(grid[2].model, ProgModel::KokkosCuda);
        assert_eq!(grid[8].arch, Arch::Epyc7A53);
    }

    #[test]
    fn full_quick_grid_covers_every_panel() {
        let cfg = StudyConfig::quick();
        let grid = full_study_grid(&cfg);
        // 11 panels; CPU panels sweep 2 quick sizes, GPU panels 2.
        let figures: std::collections::BTreeSet<_> = grid.iter().map(|p| p.figure).collect();
        assert_eq!(figures.len(), 11);
        // Eleven panels with 4+4+4+4+1+3+3+1+4+4+2 curves × 2 sizes.
        assert_eq!(grid.len(), 34 * 2);
    }

    #[test]
    fn sharded_results_match_the_figure_runner_bitwise() {
        let cfg = StudyConfig::quick();
        let spec = figure_specs()
            .into_iter()
            .find(|s| s.id == "fig7a")
            .unwrap();
        let serial = spec.run(&cfg);
        let sharded = run_study_sharded(&["fig7a"], &cfg, Shard::FULL, 1);
        for r in &sharded {
            let (_, curve) = serial
                .iter()
                .find(|(m, _)| *m == r.point.model)
                .expect("curve present");
            let run = r.outcome.as_ref().expect("fig7a fully supported");
            let point = curve
                .as_ref()
                .expect("fig7a fully supported")
                .at(r.point.n)
                .expect("size swept");
            assert_eq!(point.gflops.to_bits(), run.size.gflops.to_bits());
            assert_eq!(point.samples, run.size.samples);
        }
    }

    #[test]
    fn unsupported_points_keep_their_rows() {
        let point = GridPoint {
            figure: "fig6a",
            arch: Arch::Mi250x,
            model: ProgModel::NumbaCuda,
            precision: Precision::Double,
            n: 4096,
        };
        let results = vec![PointResult {
            point,
            outcome: Err(RunError::Unsupported {
                model: ProgModel::NumbaCuda,
                arch: Arch::Mi250x,
                reason: "deprecated backend".into(),
            }),
        }];
        let csv = render_study_csv(&results, true);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(STUDY_CSV_HEADER));
        assert_eq!(
            lines.next(),
            Some("fig6a,Mi250x,NumbaCuda,FP64,4096,,,,,unsupported")
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_line_count_matches_point_count() {
        let cfg = StudyConfig::quick();
        let results = run_study_sharded(&["fig5c"], &cfg, Shard::FULL, 1);
        assert_eq!(results.len(), 2);
        let csv = render_study_csv(&results, true);
        assert_eq!(csv.lines().count(), 1 + results.len());
        let headerless = render_study_csv(&results, false);
        assert_eq!(headerless.lines().count(), results.len());
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = StudyConfig::quick();
        let serial = run_study_sharded(&["fig6a", "fig6c"], &cfg, Shard::FULL, 1);
        let parallel = run_study_sharded(&["fig6a", "fig6c"], &cfg, Shard::FULL, 4);
        assert_eq!(
            render_study_csv(&serial, true),
            render_study_csv(&parallel, true)
        );
    }

    #[test]
    fn schedulers_do_not_change_results() {
        let cfg = StudyConfig::quick();
        let ids = ["fig6a", "fig6c"];
        let serial = run_study_sharded_with(&ids, &cfg, Shard::FULL, 1, SchedMode::Barrier);
        let want = render_study_csv(&serial, true);
        for sched in [SchedMode::Barrier, SchedMode::Graph] {
            for jobs in [2, 7] {
                let got = run_study_sharded_with(&ids, &cfg, Shard::FULL, jobs, sched);
                assert_eq!(
                    render_study_csv(&got, true),
                    want,
                    "sched={sched} jobs={jobs} diverged from serial"
                );
            }
        }
    }
}
