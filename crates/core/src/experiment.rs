//! Experiment descriptions and results.

use perfport_machines::{Bound, Precision};
use perfport_models::{Arch, ProgModel};
use std::fmt;

/// One experiment: a model on an architecture at a precision, swept over
/// square matrix sizes.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Target architecture.
    pub arch: Arch,
    /// Programming model under test.
    pub model: ProgModel,
    /// Element precision.
    pub precision: Precision,
    /// Square matrix sizes to sweep.
    pub sizes: Vec<usize>,
    /// Timed repetitions per size after the excluded warm-up (the paper
    /// runs "at least 5 or 10").
    pub reps: usize,
    /// Seed for input data and run-to-run noise.
    pub seed: u64,
}

impl Experiment {
    /// A new experiment with the paper's repetition count (5) and a fixed
    /// seed.
    pub fn new(arch: Arch, model: ProgModel, precision: Precision, sizes: Vec<usize>) -> Self {
        Experiment {
            arch,
            model,
            precision,
            sizes,
            reps: 5,
            seed: 0x5EED,
        }
    }
}

/// A measured point of the size sweep.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// Square matrix size.
    pub n: usize,
    /// Mean throughput over the timed repetitions, GFLOP/s.
    pub gflops: f64,
    /// Mean kernel time, seconds.
    pub seconds: f64,
    /// The binding resource according to the timing model.
    pub bound: Bound,
    /// Per-repetition throughput samples, GFLOP/s (the paper reports only
    /// the expected value; the samples support the variability analysis
    /// it skips).
    pub samples: Vec<f64>,
}

impl SizePoint {
    /// Sample standard deviation of the per-repetition throughput.
    pub fn stddev_gflops(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Coefficient of variation (relative run-to-run noise).
    pub fn cv(&self) -> f64 {
        if self.gflops == 0.0 {
            0.0
        } else {
            self.stddev_gflops() / self.gflops
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The experiment that produced this result.
    pub experiment: Experiment,
    /// One point per size, in sweep order.
    pub points: Vec<SizePoint>,
    /// Maximum relative error of the functional verification run against
    /// the `f64` reference.
    pub verification_rel_err: f64,
    /// Excluded warm-up time (JIT compilation + first repetition),
    /// seconds — the quantity the paper's protocol discards.
    pub warmup_excluded_s: f64,
    /// Present when the combination runs with a documented workaround
    /// (`Support::Partial`).
    pub support_note: Option<String>,
}

impl ExperimentResult {
    /// The point for size `n`, if it was swept.
    pub fn at(&self, n: usize) -> Option<&SizePoint> {
        self.points.iter().find(|p| p.n == n)
    }

    /// Mean throughput over the whole sweep, GFLOP/s.
    pub fn mean_gflops(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.gflops).sum::<f64>() / self.points.len() as f64
    }
}

/// Why an experiment could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The support matrix rules the combination out.
    Unsupported {
        /// Model that cannot run.
        model: ProgModel,
        /// Architecture it cannot run on.
        arch: Arch,
        /// The paper's reason.
        reason: String,
    },
    /// The functional verification failed — the kernel is wrong.
    VerificationFailed(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Unsupported {
                model,
                arch,
                reason,
            } => {
                write!(f, "{model} is unsupported on {arch}: {reason}")
            }
            RunError::VerificationFailed(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_defaults_match_the_paper() {
        let e = Experiment::new(
            Arch::A100,
            ProgModel::Cuda,
            Precision::Double,
            vec![1024, 2048],
        );
        assert_eq!(e.reps, 5);
        assert_eq!(e.sizes, vec![1024, 2048]);
    }

    #[test]
    fn result_accessors() {
        let e = Experiment::new(Arch::A100, ProgModel::Cuda, Precision::Double, vec![8, 16]);
        let r = ExperimentResult {
            experiment: e,
            points: vec![
                SizePoint {
                    n: 8,
                    gflops: 10.0,
                    seconds: 0.1,
                    bound: Bound::Compute,
                    samples: vec![9.0, 11.0],
                },
                SizePoint {
                    n: 16,
                    gflops: 30.0,
                    seconds: 0.2,
                    bound: Bound::Compute,
                    samples: vec![30.0, 30.0],
                },
            ],
            verification_rel_err: 0.0,
            warmup_excluded_s: 0.0,
            support_note: None,
        };
        assert_eq!(r.at(16).unwrap().gflops, 30.0);
        assert!(r.at(32).is_none());
        assert!((r.mean_gflops() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn variability_statistics() {
        let p = SizePoint {
            n: 8,
            gflops: 10.0,
            seconds: 0.1,
            bound: Bound::Compute,
            samples: vec![9.0, 10.0, 11.0],
        };
        assert!((p.stddev_gflops() - 1.0).abs() < 1e-12);
        assert!((p.cv() - 0.1).abs() < 1e-12);
        let empty = SizePoint {
            n: 8,
            gflops: 0.0,
            seconds: 0.0,
            bound: Bound::Compute,
            samples: vec![],
        };
        assert_eq!(empty.stddev_gflops(), 0.0);
        assert_eq!(empty.cv(), 0.0);
    }

    #[test]
    fn run_error_display() {
        let e = RunError::Unsupported {
            model: ProgModel::NumbaCuda,
            arch: Arch::Mi250x,
            reason: "deprecated".into(),
        };
        assert!(e.to_string().contains("unsupported"));
    }
}
