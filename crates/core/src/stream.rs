//! A BabelStream-style bandwidth workload (extension A6).
//!
//! BabelStream is the community's standard portability benchmark — the
//! same related work the paper positions against (Lin & McIntosh-Smith's
//! Julia comparison uses it). Adding its kernels shows the laboratory
//! generalises beyond GEMM: the same machines, model profiles, and
//! support matrix drive a purely bandwidth-bound workload.
//!
//! Kernels (per BabelStream): `copy: c = a`, `mul: b = κ·c`,
//! `add: c = a + b`, `triad: a = b + κ·c`, `dot: Σ a·b`. Each is executed
//! functionally (CPU pool or SIMT simulator) for verification, and its
//! sustained bandwidth is estimated from the machine's memory system and
//! the model's profile.

use crate::experiment::RunError;
use perfport_machines::numa_locality;
use perfport_models::{
    codegen_efficiency, cpu_profile, gpu_profile, support, Arch, ProgModel, Support,
};
use perfport_pool::{PinPolicy, Schedule, ThreadPool};
use std::fmt;

/// One BabelStream kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]`.
    Copy,
    /// `b[i] = κ · c[i]`.
    Mul,
    /// `c[i] = a[i] + b[i]`.
    Add,
    /// `a[i] = b[i] + κ · c[i]`.
    Triad,
    /// `Σ a[i]·b[i]`.
    Dot,
}

impl StreamKernel {
    /// The five kernels in BabelStream's reporting order.
    pub const ALL: [StreamKernel; 5] = [
        StreamKernel::Copy,
        StreamKernel::Mul,
        StreamKernel::Add,
        StreamKernel::Triad,
        StreamKernel::Dot,
    ];

    /// Bytes moved per element (reads + writes of f64).
    pub fn bytes_per_element(&self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Mul => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
            StreamKernel::Dot => 16,
        }
    }

    /// Kernel name as BabelStream prints it.
    pub fn name(&self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Mul => "Mul",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
            StreamKernel::Dot => "Dot",
        }
    }
}

impl fmt::Display for StreamKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The BabelStream scaling constant.
pub const KAPPA: f64 = 0.4;

/// Executes one kernel functionally over `n` elements on the host pool
/// and verifies the result. Returns the verified checksum (sum of the
/// output array, or the dot value).
pub fn run_stream_kernel(pool: &ThreadPool, kernel: StreamKernel, n: usize) -> f64 {
    let a0: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64).collect();
    let b0: Vec<f64> = (0..n).map(|i| 0.2 + (i % 5) as f64).collect();
    let c0: Vec<f64> = (0..n).map(|i| 0.3 + (i % 3) as f64).collect();

    match kernel {
        StreamKernel::Copy => {
            let mut c = vec![0.0; n];
            let ds = perfport_pool::DisjointSlice::new(&mut c);
            pool.parallel_for_each(n, Schedule::StaticBlock, |i| {
                // SAFETY: each index assigned to exactly one thread.
                unsafe { *ds.at(i) = a0[i] };
            });
            assert_eq!(c, a0, "copy verification");
            c.iter().sum()
        }
        StreamKernel::Mul => {
            let mut b = vec![0.0; n];
            let ds = perfport_pool::DisjointSlice::new(&mut b);
            pool.parallel_for_each(n, Schedule::StaticBlock, |i| {
                // SAFETY: disjoint indices.
                unsafe { *ds.at(i) = KAPPA * c0[i] };
            });
            for i in 0..n {
                assert_eq!(b[i], KAPPA * c0[i], "mul verification at {i}");
            }
            b.iter().sum()
        }
        StreamKernel::Add => {
            let mut c = vec![0.0; n];
            let ds = perfport_pool::DisjointSlice::new(&mut c);
            pool.parallel_for_each(n, Schedule::StaticBlock, |i| {
                // SAFETY: disjoint indices.
                unsafe { *ds.at(i) = a0[i] + b0[i] };
            });
            for i in 0..n {
                assert_eq!(c[i], a0[i] + b0[i], "add verification at {i}");
            }
            c.iter().sum()
        }
        StreamKernel::Triad => {
            let mut a = vec![0.0; n];
            let ds = perfport_pool::DisjointSlice::new(&mut a);
            pool.parallel_for_each(n, Schedule::StaticBlock, |i| {
                // SAFETY: disjoint indices.
                unsafe { *ds.at(i) = b0[i] + KAPPA * c0[i] };
            });
            for i in 0..n {
                assert_eq!(a[i], b0[i] + KAPPA * c0[i], "triad verification at {i}");
            }
            a.iter().sum()
        }
        StreamKernel::Dot => {
            let (dot, _) = pool.parallel_sum(n, Schedule::StaticBlock, |i| a0[i] * b0[i]);
            let expect: f64 = (0..n).map(|i| a0[i] * b0[i]).sum();
            assert!(
                (dot - expect).abs() < expect.abs() * 1e-12,
                "dot verification"
            );
            dot
        }
    }
}

/// Modelled sustained bandwidth (GB/s) for one model running the kernel
/// on one architecture. Bandwidth-bound by construction: peak memory
/// bandwidth × NUMA locality × codegen residual (bounds checks slow even
/// a streaming loop).
///
/// # Errors
///
/// [`RunError::Unsupported`] for excluded combinations.
pub fn estimate_stream_bandwidth(
    arch: Arch,
    model: ProgModel,
    kernel: StreamKernel,
) -> Result<f64, RunError> {
    if let Support::Unsupported(reason) = support(model, arch, perfport_machines::Precision::Double)
    {
        return Err(RunError::Unsupported {
            model,
            arch,
            reason: reason.to_string(),
        });
    }
    let q = codegen_efficiency(model, arch, perfport_machines::Precision::Double).value;
    let bw = if let Some(cpu) = arch.cpu_machine() {
        let pinned = cpu_profile(model).pin_policy != PinPolicy::Unpinned;
        cpu.total_bw_gbs() * numa_locality(&cpu, pinned)
    } else {
        let gpu = arch.gpu_machine().expect("gpu arch");
        // Launch overheads are negligible for a saturating stream; the
        // profile is consulted so unsupported models error out above.
        let _ = gpu_profile(model);
        gpu.mem_bw_gbs
    };
    // Dot reduces instead of storing: the read streams still dominate.
    let kernel_factor = match kernel {
        StreamKernel::Dot => 0.95,
        _ => 1.0,
    };
    Ok(bw * q.min(1.0) * kernel_factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_verify_on_the_pool() {
        let pool = ThreadPool::new(4);
        for kernel in StreamKernel::ALL {
            let sum = run_stream_kernel(&pool, kernel, 10_000);
            assert!(sum.is_finite() && sum > 0.0, "{kernel}");
        }
    }

    #[test]
    fn kernel_metadata() {
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Dot.to_string(), "Dot");
        assert_eq!(StreamKernel::ALL.len(), 5);
    }

    #[test]
    fn stream_is_bandwidth_bound_everywhere() {
        // Unlike GEMM, a pure stream hides codegen differences: every
        // pinned model lands near the machine's bandwidth.
        for arch in Arch::ALL {
            let vendor = ProgModel::vendor_reference(arch);
            let peak = estimate_stream_bandwidth(arch, vendor, StreamKernel::Triad).unwrap();
            assert!(peak > 100.0, "{arch}");
        }
    }

    #[test]
    fn numba_pays_numa_on_crusher_but_not_wombat_for_streams_too() {
        let crusher = estimate_stream_bandwidth(
            Arch::Epyc7A53,
            ProgModel::NumbaParallel,
            StreamKernel::Triad,
        )
        .unwrap()
            / estimate_stream_bandwidth(Arch::Epyc7A53, ProgModel::COpenMp, StreamKernel::Triad)
                .unwrap();
        let wombat = estimate_stream_bandwidth(
            Arch::AmpereAltra,
            ProgModel::NumbaParallel,
            StreamKernel::Triad,
        )
        .unwrap()
            / estimate_stream_bandwidth(Arch::AmpereAltra, ProgModel::COpenMp, StreamKernel::Triad)
                .unwrap();
        assert!(crusher < wombat, "crusher {crusher} vs wombat {wombat}");
    }

    #[test]
    fn unsupported_combinations_error() {
        assert!(
            estimate_stream_bandwidth(Arch::Mi250x, ProgModel::NumbaCuda, StreamKernel::Copy)
                .is_err()
        );
        assert!(
            estimate_stream_bandwidth(Arch::A100, ProgModel::COpenMp, StreamKernel::Copy).is_err()
        );
    }

    #[test]
    fn gpu_streams_reach_hbm_class_bandwidth() {
        let bw =
            estimate_stream_bandwidth(Arch::A100, ProgModel::Cuda, StreamKernel::Triad).unwrap();
        assert!(bw > 1_000.0, "{bw}");
    }
}
