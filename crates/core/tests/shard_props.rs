//! Property tests for the sharded study runner: the byte-identity
//! contract (`perfport_core::shard`) holds for *arbitrary* partitions of
//! the quick grid, and the shard arithmetic never drops or duplicates a
//! point.

use perfport_core::{
    figure_specs, full_study_grid, render_study_csv, run_study_sharded, Shard, StudyConfig,
};
use proptest::prelude::*;

proptest! {
    /// Every canonical index lands in exactly one shard, for any shard
    /// count and any grid size — the pure-arithmetic half of the
    /// byte-identity contract.
    #[test]
    fn every_point_lands_in_exactly_one_shard(count in 1usize..48, total in 0usize..600) {
        let mut seen = vec![0u32; total];
        for index in 0..count {
            for i in (Shard { index, count }).range(total) {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "seen = {seen:?}");
    }

    /// Shard sizes are balanced to within one point.
    #[test]
    fn shard_sizes_differ_by_at_most_one(count in 1usize..48, total in 0usize..600) {
        let sizes: Vec<usize> = (0..count)
            .map(|index| (Shard { index, count }).range(total).len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes = {sizes:?}");
    }

    /// `--shard` syntax round-trips through Display.
    #[test]
    fn parse_display_round_trip(index in 0usize..64, count in 1usize..64) {
        prop_assume!(index < count);
        let s = Shard { index, count };
        prop_assert_eq!(Shard::parse(&s.to_string()), Ok(s));
    }
}

/// All eleven quick panels, the grid the figure binaries shard over.
fn all_ids() -> Vec<&'static str> {
    figure_specs().iter().map(|s| s.id).collect()
}

/// Concatenating the per-shard CSVs of any n-way partition of the full
/// quick grid, header on shard 0 only, reproduces the single-shot
/// (`0/1`) artifact byte for byte.
#[test]
fn any_partition_concatenates_to_the_serial_bytes() {
    let cfg = StudyConfig::quick();
    let ids = all_ids();
    let serial = render_study_csv(&run_study_sharded(&ids, &cfg, Shard::FULL, 1), true);
    let total = full_study_grid(&cfg).len();
    // Uneven counts, a count larger than some shards' size would be even,
    // and one exceeding the grid (empty tail shards must emit nothing).
    for count in [2usize, 3, 5, 7, total + 3] {
        let mut concatenated = String::new();
        for index in 0..count {
            let shard = Shard { index, count };
            let results = run_study_sharded(&ids, &cfg, shard, 1);
            assert_eq!(results.len(), shard.range(total).len(), "{shard}");
            concatenated.push_str(&render_study_csv(&results, index == 0));
        }
        assert_eq!(
            concatenated, serial,
            "partition into {count} shards must reproduce the serial bytes"
        );
    }
}

/// The worker count changes wall-clock, never bytes.
#[test]
fn job_count_never_reaches_the_output() {
    let cfg = StudyConfig::quick();
    let ids = all_ids();
    let one = render_study_csv(&run_study_sharded(&ids, &cfg, Shard::FULL, 1), true);
    for jobs in [2usize, 4] {
        let many = render_study_csv(&run_study_sharded(&ids, &cfg, Shard::FULL, jobs), true);
        assert_eq!(one, many, "jobs={jobs} must not change the artifact");
    }
    // Sharding and parallelism compose: a parallel shard still emits its
    // slice of the serial bytes.
    let shard = Shard { index: 1, count: 3 };
    let a = render_study_csv(&run_study_sharded(&ids, &cfg, shard, 1), false);
    let b = render_study_csv(&run_study_sharded(&ids, &cfg, shard, 4), false);
    assert_eq!(a, b);
}
