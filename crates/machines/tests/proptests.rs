//! Property-based tests for the timing models: physical sanity laws that
//! must hold for any workload and configuration.

use perfport_machines::{
    estimate_cpu_gemm, estimate_gpu_kernel, CpuExecution, CpuMachine, GemmShape, GpuExecution,
    GpuKernelProfile, GpuMachine, Precision, Roofline,
};
use proptest::prelude::*;

fn cpu_machines() -> Vec<CpuMachine> {
    vec![CpuMachine::epyc_7a53(), CpuMachine::ampere_altra()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimates never exceed the machine's raw peak.
    #[test]
    fn cpu_never_beats_peak(n in 1usize..8192, threads in 1usize..128) {
        for m in cpu_machines() {
            let exec = CpuExecution { threads, ..CpuExecution::vendor_baseline(&m) };
            let e = estimate_cpu_gemm(&m, Precision::Double, &GemmShape::square(n), &exec);
            prop_assert!(e.gflops <= m.peak_gflops(Precision::Double) + 1e-9);
            prop_assert!(e.seconds > 0.0);
            prop_assert!(e.gflops.is_finite());
        }
    }

    /// Time is monotone non-decreasing in problem size.
    #[test]
    fn cpu_time_monotone_in_size(n in 64usize..4096, delta in 1usize..2048) {
        for m in cpu_machines() {
            let exec = CpuExecution::vendor_baseline(&m);
            let small = estimate_cpu_gemm(&m, Precision::Double, &GemmShape::square(n), &exec);
            let big = estimate_cpu_gemm(&m, Precision::Double, &GemmShape::square(n + delta), &exec);
            prop_assert!(big.seconds >= small.seconds);
        }
    }

    /// Lower codegen efficiency never makes things faster.
    #[test]
    fn cpu_codegen_monotone(n in 64usize..4096, q in 0.1f64..1.0) {
        let m = CpuMachine::epyc_7a53();
        let mut exec = CpuExecution::vendor_baseline(&m);
        let full = estimate_cpu_gemm(&m, Precision::Double, &GemmShape::square(n), &exec);
        exec.codegen_efficiency = q;
        let derated = estimate_cpu_gemm(&m, Precision::Double, &GemmShape::square(n), &exec);
        prop_assert!(derated.gflops <= full.gflops * 1.000001);
    }

    /// Unpinning can only hurt (or leave unchanged on 1-NUMA machines).
    #[test]
    fn cpu_pinning_monotone(n in 64usize..4096) {
        for m in cpu_machines() {
            let shape = GemmShape::square(n);
            let mut exec = CpuExecution::vendor_baseline(&m);
            let pinned = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
            exec.pinned = false;
            let unpinned = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
            prop_assert!(unpinned.gflops <= pinned.gflops * 1.000001);
        }
    }

    /// GPU estimates respect the precision peak and improve (weakly) with
    /// bandwidth.
    #[test]
    fn gpu_bounded_and_bandwidth_monotone(
        flops in 1e6f64..1e13,
        l1_ratio in 0.1f64..16.0,
        dram_ratio in 0.01f64..4.0,
    ) {
        let profile = GpuKernelProfile {
            flops,
            l1_bytes: flops * l1_ratio,
            dram_bytes: flops * dram_ratio,
        };
        let base = GpuMachine::a100();
        let exec = GpuExecution::vendor_baseline(&base, 10_000, 2);
        let e = estimate_gpu_kernel(&base, Precision::Double, &profile, &exec);
        prop_assert!(e.gflops <= base.peak_gflops(Precision::Double) + 1e-9);

        let mut faster = GpuMachine::a100();
        faster.mem_bw_gbs *= 2.0;
        let e2 = estimate_gpu_kernel(&faster, Precision::Double, &profile, &exec);
        prop_assert!(e2.seconds <= e.seconds * 1.000001);
    }

    /// More divergence, lower occupancy, or lower codegen never speed a
    /// kernel up.
    #[test]
    fn gpu_derates_monotone(
        occ in 0.01f64..1.0,
        div in 0.0f64..1.0,
        q in 0.05f64..1.0,
    ) {
        let m = GpuMachine::mi250x_gcd();
        let profile = GpuKernelProfile { flops: 1e12, l1_bytes: 8e12, dram_bytes: 3e11 };
        let base = GpuExecution::vendor_baseline(&m, 100_000, 2);
        let e0 = estimate_gpu_kernel(&m, Precision::Single, &profile, &base);
        let worse = GpuExecution {
            codegen_efficiency: q,
            occupancy: occ,
            divergence_rate: div,
            ..base
        };
        let e1 = estimate_gpu_kernel(&m, Precision::Single, &profile, &worse);
        prop_assert!(e1.gflops <= e0.gflops * 1.000001);
    }

    /// Roofline attainable is monotone in arithmetic intensity and capped
    /// by peak.
    #[test]
    fn roofline_monotone(peak in 1.0f64..1e5, bw in 1.0f64..1e4, ai in 0.0f64..1e4) {
        let r = Roofline { peak_gflops: peak, bw_gbs: bw };
        let at = r.attainable(ai);
        prop_assert!(at <= peak + 1e-9);
        prop_assert!(at <= bw * ai + 1e-9 || ai == 0.0);
        let more = r.attainable(ai * 2.0 + 1.0);
        prop_assert!(more >= at);
    }

    /// GFLOPS and seconds are mutually consistent in every estimate.
    #[test]
    fn estimate_consistency(n in 32usize..4096) {
        let m = CpuMachine::ampere_altra();
        let shape = GemmShape::square(n);
        let exec = CpuExecution::vendor_baseline(&m);
        for p in [Precision::Double, Precision::Single, Precision::Half] {
            let e = estimate_cpu_gemm(&m, p, &shape, &exec);
            let implied = shape.flops() / e.seconds / 1e9;
            prop_assert!((implied - e.gflops).abs() / e.gflops < 1e-9);
        }
    }
}
