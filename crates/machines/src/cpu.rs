//! CPU node descriptions.

use crate::precision::Precision;
use perfport_pool::CpuTopology;
use serde::Serialize;

/// A multicore CPU node, described by the parameters the timing model
/// needs.
#[derive(Debug, Clone, Serialize)]
pub struct CpuMachine {
    /// Marketing name, e.g. `"AMD EPYC 7A53"`.
    pub name: &'static str,
    /// Host system in the paper, e.g. `"Crusher"`.
    pub system: &'static str,
    /// NUMA domains.
    pub numa_domains: usize,
    /// Physical cores per NUMA domain.
    pub cores_per_domain: usize,
    /// Sustained all-core clock, GHz.
    pub clock_ghz: f64,
    /// SIMD register width, bits (AVX2 = 256, NEON = 128).
    pub simd_bits: u32,
    /// FMA pipes per core.
    pub fma_units: u32,
    /// Whether the SIMD units execute FP16 natively (Neoverse: yes;
    /// Zen 3: no — FP16 is software-converted, the paper's "very low
    /// performance" case on Crusher CPUs).
    pub native_fp16: bool,
    /// Sustained memory bandwidth per NUMA domain, GB/s.
    pub mem_bw_per_domain_gbs: f64,
    /// Bandwidth multiplier for remote-domain access.
    pub remote_numa_penalty: f64,
    /// Total last-level cache, MiB (governs when `B` stops fitting).
    pub llc_mib: f64,
    /// Aggregate last-level-cache bandwidth, GB/s (bounds the inner-loop
    /// streaming of `B` when it hits in cache).
    pub llc_bw_gbs: f64,
    /// Fork-join cost of one parallel region, microseconds (vendor OpenMP
    /// runtime baseline; programming models scale it).
    pub fork_join_us: f64,
}

impl CpuMachine {
    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.numa_domains * self.cores_per_domain
    }

    /// The pool-level topology of this machine.
    pub fn topology(&self) -> CpuTopology {
        CpuTopology::new(self.numa_domains, self.cores_per_domain, 1)
    }

    /// SIMD lanes per operation at a precision (1 lane when FP16 is not
    /// native — scalar emulation via conversion).
    pub fn simd_lanes(&self, p: Precision) -> f64 {
        match p {
            Precision::Half if !self.native_fp16 => 0.25, // convert-compute-convert, slower than scalar f32
            _ => f64::from(self.simd_bits) / (8.0 * p.bytes() as f64),
        }
    }

    /// Peak GFLOP/s of one core at a precision (`clock × lanes × 2 flops ×
    /// FMA pipes`).
    pub fn peak_core_gflops(&self, p: Precision) -> f64 {
        self.clock_ghz * self.simd_lanes(p) * 2.0 * f64::from(self.fma_units)
    }

    /// Peak GFLOP/s of the whole node.
    pub fn peak_gflops(&self, p: Precision) -> f64 {
        self.peak_core_gflops(p) * self.total_cores() as f64
    }

    /// Aggregate memory bandwidth, GB/s.
    pub fn total_bw_gbs(&self) -> f64 {
        self.mem_bw_per_domain_gbs * self.numa_domains as f64
    }

    /// Crusher's AMD EPYC 7A53 "Trento": 64 Zen-3 cores, NPS4.
    pub fn epyc_7a53() -> Self {
        CpuMachine {
            name: "AMD EPYC 7A53",
            system: "Crusher",
            numa_domains: 4,
            cores_per_domain: 16,
            clock_ghz: 2.45,
            simd_bits: 256,
            fma_units: 2,
            native_fp16: false,
            mem_bw_per_domain_gbs: 51.0, // 8× DDR4-3200 across 4 NPS domains
            remote_numa_penalty: 0.45,
            llc_mib: 256.0,
            llc_bw_gbs: 1_600.0,
            fork_join_us: 12.0,
        }
    }

    /// Wombat's Ampere Altra: 80 Neoverse-N1 cores, single NUMA domain.
    pub fn ampere_altra() -> Self {
        CpuMachine {
            name: "Ampere Altra",
            system: "Wombat",
            numa_domains: 1,
            cores_per_domain: 80,
            clock_ghz: 3.0,
            simd_bits: 128,
            fma_units: 2,
            native_fp16: true,
            mem_bw_per_domain_gbs: 197.0, // 8× DDR4-3200
            remote_numa_penalty: 1.0,     // single domain: no remote accesses
            llc_mib: 32.0,
            llc_bw_gbs: 800.0,
            fork_join_us: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epyc_shape_matches_table_i() {
        let m = CpuMachine::epyc_7a53();
        assert_eq!(m.total_cores(), 64);
        assert_eq!(m.numa_domains, 4);
        assert_eq!(m.topology().total_cores(), 64);
    }

    #[test]
    fn altra_shape_matches_table_i() {
        let m = CpuMachine::ampere_altra();
        assert_eq!(m.total_cores(), 80);
        assert_eq!(m.numa_domains, 1);
        assert!(m.native_fp16);
    }

    #[test]
    fn peaks_scale_with_precision() {
        let m = CpuMachine::epyc_7a53();
        let d = m.peak_gflops(Precision::Double);
        let s = m.peak_gflops(Precision::Single);
        assert!((s / d - 2.0).abs() < 1e-12, "FP32 doubles AVX2 lanes");
        // EPYC FP64 peak: 2.45 GHz × 4 lanes × 2 × 2 units × 64 cores.
        assert!((d - 2.45 * 4.0 * 2.0 * 2.0 * 64.0).abs() < 1e-9);
    }

    #[test]
    fn fp16_native_vs_emulated() {
        let amd = CpuMachine::epyc_7a53();
        let arm = CpuMachine::ampere_altra();
        // Arm FP16 is faster than its FP32; AMD FP16 is slower than FP64
        // (software emulation), matching the paper's observation.
        assert!(arm.peak_gflops(Precision::Half) > arm.peak_gflops(Precision::Single));
        assert!(amd.peak_gflops(Precision::Half) < amd.peak_gflops(Precision::Double));
    }

    #[test]
    fn bandwidth_aggregates_domains() {
        let m = CpuMachine::epyc_7a53();
        assert!((m.total_bw_gbs() - 204.0).abs() < 1.0);
    }
}
