//! Analytical timing model for the fine-granularity GPU GEMM of Fig. 3.
//!
//! A hierarchical roofline driven by the simulator's counters:
//!
//! * **Compute** — vector peak at the precision (no tensor cores; the
//!   kernels are plain FMA loops).
//! * **L1/LSU** — the naive kernel issues two element loads per FMA pair;
//!   the load/store units service `l1_bytes_per_cycle_per_sm`, which is
//!   the binding ceiling for un-tiled GEMM and why nobody's hand-rolled
//!   kernel comes near vendor BLAS. Input: requested element bytes from
//!   the `perfport-gpusim` counters.
//! * **DRAM** — the block-reuse footprint (`A` re-read once per block
//!   column of the grid, `B` once per block row).
//!
//! All three ceilings are derated by the *achieved-fraction product*:
//! code-generation efficiency (e.g. CUDA.jl's 2× unroll vs. nvcc's 4×
//! observed in the paper's PTX), occupancy relative to the latency-hiding
//! threshold, divergence, and wave quantisation. Deriving one achieved
//! fraction and applying it across ceilings is the standard shortcut in
//! performance-portability studies; per-model values live in
//! `perfport-models` with their calibration provenance.
//!
//! Overhead: launch latency (model-scaled; Numba's Python dispatch makes
//! it large).

use crate::gpu::GpuMachine;
use crate::precision::Precision;
use crate::roofline::{Bound, Estimate};

/// Occupancy fraction past which more resident warps stop helping a
/// streaming FMA kernel.
pub const OCCUPANCY_SATURATION: f64 = 0.25;

/// Traffic profile of one kernel launch, in bytes. Produced by scaling
/// `perfport-gpusim` counters (see `perfport-core`).
#[derive(Debug, Clone, Copy)]
pub struct GpuKernelProfile {
    /// Floating-point operations.
    pub flops: f64,
    /// Element bytes requested from global memory (loads + stores) — the
    /// L1/LSU traffic.
    pub l1_bytes: f64,
    /// Estimated DRAM traffic after cache reuse, bytes.
    pub dram_bytes: f64,
}

/// How a programming model launches the kernel.
#[derive(Debug, Clone, Copy)]
pub struct GpuExecution {
    /// Code-generation quality relative to the vendor toolchain,
    /// `0..=1.2` (slightly above 1 is possible: the paper measured Julia
    /// beating HIP on MI250X FP32).
    pub codegen_efficiency: f64,
    /// Achieved occupancy fraction (`perfport_gpusim::occupancy`).
    pub occupancy: f64,
    /// Fraction of active warps that diverged.
    pub divergence_rate: f64,
    /// End-to-end launch overhead, µs (machine baseline × model
    /// multiplier; large for Numba's Python dispatch).
    pub launch_overhead_us: f64,
    /// Thread blocks in the grid (for the wave-quantisation tail).
    pub grid_blocks: u64,
    /// Resident blocks per SM at this block shape.
    pub blocks_per_sm: u32,
}

impl GpuExecution {
    /// A vendor-CUDA/HIP-like execution with given grid facts.
    pub fn vendor_baseline(machine: &GpuMachine, grid_blocks: u64, blocks_per_sm: u32) -> Self {
        GpuExecution {
            codegen_efficiency: 1.0,
            occupancy: 1.0,
            divergence_rate: 0.0,
            launch_overhead_us: machine.launch_latency_us,
            grid_blocks,
            blocks_per_sm,
        }
    }

    /// The combined achieved-fraction multiplier applied to every ceiling.
    pub fn achieved_fraction(&self, sms: u32) -> f64 {
        let occ = (self.occupancy / OCCUPANCY_SATURATION).min(1.0);
        let div = 1.0 - 0.5 * self.divergence_rate;
        let tail = wave_efficiency(self.grid_blocks, sms, self.blocks_per_sm);
        self.codegen_efficiency * occ * div * tail
    }
}

/// Tail (wave-quantisation) efficiency: a grid of `blocks` on `sms ×
/// blocks_per_sm` slots executes in full waves; the last partial wave
/// wastes slots.
pub fn wave_efficiency(grid_blocks: u64, sms: u32, blocks_per_sm: u32) -> f64 {
    if grid_blocks == 0 {
        return 1.0;
    }
    let slots = u64::from(sms) * u64::from(blocks_per_sm.max(1));
    let waves = grid_blocks.div_ceil(slots);
    grid_blocks as f64 / (waves * slots) as f64
}

/// Predicts the execution time of one kernel launch described by
/// `profile` under `exec`.
///
/// # Panics
///
/// Panics on out-of-range efficiency/occupancy inputs.
pub fn estimate_gpu_kernel(
    machine: &GpuMachine,
    precision: Precision,
    profile: &GpuKernelProfile,
    exec: &GpuExecution,
) -> Estimate {
    assert!(
        exec.codegen_efficiency > 0.0 && exec.codegen_efficiency <= 1.5,
        "codegen efficiency out of range"
    );
    assert!((0.0..=1.0).contains(&exec.occupancy), "occupancy in 0..=1");
    assert!(
        (0.0..=1.0).contains(&exec.divergence_rate),
        "divergence in 0..=1"
    );

    let achieved = exec.achieved_fraction(machine.sms);

    let compute_s = profile.flops / (machine.peak_gflops(precision) * 1e9);
    let l1_s = profile.l1_bytes / (machine.l1_bw_gbs() * 1e9);
    let dram_s = profile.dram_bytes / (machine.mem_bw_gbs * 1e9);

    Estimate::from_components(
        profile.flops,
        exec.launch_overhead_us * 1e-6,
        &[
            (Bound::Compute, compute_s / achieved),
            (Bound::OnChipBandwidth, l1_s / achieved),
            (Bound::MemoryBandwidth, dram_s / achieved),
        ],
    )
}

/// Steady-state throughput ceiling in GFLOP/s for a counter-derived
/// profile: the lower of the compute and L1/LSU ceilings, derated by
/// occupancy and divergence only.
///
/// This is the asymptotic (large-grid) rate the measured GPU headroom
/// constants are derived from, so launch overhead and the
/// wave-quantisation tail are deliberately excluded. So is the DRAM
/// ceiling: the simulator's transaction counters are cacheless (every
/// global access becomes line traffic), which would wildly overstate
/// DRAM pressure for any kernel with reuse — DRAM enters the figure
/// model through the analytic block-reuse profile instead.
pub fn steady_state_gflops(
    machine: &GpuMachine,
    precision: Precision,
    profile: &GpuKernelProfile,
    occupancy: f64,
    divergence_rate: f64,
) -> f64 {
    steady_state_with_peak(
        machine.peak_gflops(precision),
        machine,
        profile,
        occupancy,
        divergence_rate,
    )
}

/// Steady-state throughput of the modelled tensor-core (matrix-unit)
/// variant: same derated-roofline shape as [`steady_state_gflops`] but
/// with the FP16-in/FP32-accumulate matrix rate as the compute ceiling.
///
/// The functional kernel behind it
/// (`perfport_gemm::gpu_gemm_tiled_mixed::<F16, f32>`) executes scalar
/// MACs on the simulator; its occupancy and traffic counters are real,
/// while the datapath rate is the spec-sheet matrix-unit peak — hence
/// "modelled, occupancy-derived".
pub fn tensor_core_gflops(
    machine: &GpuMachine,
    profile: &GpuKernelProfile,
    occupancy: f64,
    divergence_rate: f64,
) -> f64 {
    steady_state_with_peak(
        machine.peak_tensor_fp16_gflops,
        machine,
        profile,
        occupancy,
        divergence_rate,
    )
}

fn steady_state_with_peak(
    peak_gflops: f64,
    machine: &GpuMachine,
    profile: &GpuKernelProfile,
    occupancy: f64,
    divergence_rate: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&occupancy), "occupancy in 0..=1");
    assert!(
        (0.0..=1.0).contains(&divergence_rate),
        "divergence in 0..=1"
    );
    let occ = (occupancy / OCCUPANCY_SATURATION).min(1.0);
    let achieved = occ * (1.0 - 0.5 * divergence_rate);

    let compute_s = profile.flops / (peak_gflops * 1e9);
    let l1_s = profile.l1_bytes / (machine.l1_bw_gbs() * 1e9);
    let slowest = compute_s.max(l1_s) / achieved;
    profile.flops / slowest / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic naive-GEMM profile for a square n with 32×32 blocks
    /// (mirrors what perfport-core computes).
    fn naive_profile(n: f64, bytes: f64) -> GpuKernelProfile {
        let flops = 2.0 * n * n * n;
        GpuKernelProfile {
            flops,
            // Two element loads per FMA pair plus the C store.
            l1_bytes: (n * n * n * 2.0 + n * n) * bytes,
            // Block reuse: A re-read n/32 times, B re-read n/32 times.
            dram_bytes: n * n * (n / 32.0) * bytes * 2.0 + n * n * bytes,
        }
    }

    fn grid_blocks(n: u64) -> u64 {
        (n / 32) * (n / 32)
    }

    #[test]
    fn a100_fp64_lands_in_the_naive_band() {
        let m = GpuMachine::a100();
        let exec = GpuExecution::vendor_baseline(&m, grid_blocks(8192), 2);
        let e = estimate_gpu_kernel(&m, Precision::Double, &naive_profile(8192.0, 8.0), &exec);
        // Hand-rolled FP64 GEMM on A100: low terabytes of flops/s — far
        // from cuBLAS (~19 TF tensor), far above the CPU.
        assert!(e.gflops > 800.0, "{e:?}");
        assert!(e.gflops < 5_000.0, "{e:?}");
        assert_eq!(e.bound, Bound::OnChipBandwidth);
    }

    #[test]
    fn fp32_roughly_doubles_fp64_on_a100() {
        let m = GpuMachine::a100();
        let exec = GpuExecution::vendor_baseline(&m, grid_blocks(8192), 2);
        let d = estimate_gpu_kernel(&m, Precision::Double, &naive_profile(8192.0, 8.0), &exec);
        let s = estimate_gpu_kernel(&m, Precision::Single, &naive_profile(8192.0, 4.0), &exec);
        let gain = s.gflops / d.gflops;
        assert!(gain > 1.6 && gain < 2.2, "gain {gain}");
    }

    #[test]
    fn codegen_derating_scales_throughput() {
        let m = GpuMachine::a100();
        let profile = naive_profile(8192.0, 8.0);
        let mut exec = GpuExecution::vendor_baseline(&m, grid_blocks(8192), 2);
        let full = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        exec.codegen_efficiency = 0.25;
        let quarter = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        assert!((full.gflops / quarter.gflops - 4.0).abs() < 0.05);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let m = GpuMachine::a100();
        let profile = GpuKernelProfile {
            flops: 1e5,
            l1_bytes: 1e4,
            dram_bytes: 1e4,
        };
        let exec = GpuExecution::vendor_baseline(&m, 1, 2);
        let e = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        assert_eq!(e.bound, Bound::Overhead);
    }

    #[test]
    fn wave_quantisation() {
        assert!((wave_efficiency(216, 108, 2) - 1.0).abs() < 1e-12);
        let w = wave_efficiency(217, 108, 2);
        assert!(w > 0.5 && w < 0.55, "{w}");
        assert!(wave_efficiency(1_000_000, 108, 2) > 0.99);
        assert_eq!(wave_efficiency(0, 108, 2), 1.0);
    }

    #[test]
    fn low_occupancy_throttles_everything() {
        let m = GpuMachine::mi250x_gcd();
        let profile = naive_profile(4096.0, 8.0);
        let mut exec = GpuExecution::vendor_baseline(&m, grid_blocks(4096), 2);
        exec.occupancy = 0.05;
        let starved = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        exec.occupancy = 0.5;
        let healthy = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        assert!(healthy.gflops > starved.gflops * 3.0);
    }

    #[test]
    fn divergence_costs_up_to_half() {
        let m = GpuMachine::a100();
        let profile = naive_profile(4096.0, 8.0);
        let mut exec = GpuExecution::vendor_baseline(&m, grid_blocks(4096), 2);
        exec.divergence_rate = 1.0;
        let diverged = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        exec.divergence_rate = 0.0;
        let uniform = estimate_gpu_kernel(&m, Precision::Double, &profile, &exec);
        assert!((uniform.gflops / diverged.gflops - 2.0).abs() < 0.01);
    }

    #[test]
    fn mi250x_fp32_gains_are_modest() {
        // CDNA2 vector FP32 == FP64 peak; gains come only from halved
        // traffic — matching the paper's modest MI250X improvements.
        let m = GpuMachine::mi250x_gcd();
        let exec = GpuExecution::vendor_baseline(&m, grid_blocks(8192), 2);
        let d = estimate_gpu_kernel(&m, Precision::Double, &naive_profile(8192.0, 8.0), &exec);
        let s = estimate_gpu_kernel(&m, Precision::Single, &naive_profile(8192.0, 4.0), &exec);
        let gain = s.gflops / d.gflops;
        assert!(gain > 1.0 && gain < 2.1, "gain {gain}");
    }

    #[test]
    fn steady_state_naive_is_l1_bound() {
        // The naive kernel moves ~2 elements per FMA pair through the
        // LSU: its steady-state rate is the L1 ceiling, far below peak.
        let m = GpuMachine::a100();
        let p = naive_profile(4096.0, 8.0);
        let g = steady_state_gflops(&m, Precision::Double, &p, 1.0, 0.0);
        let l1_limited = p.flops / (p.l1_bytes / (m.l1_bw_gbs() * 1e9)) / 1e9;
        assert!((g - l1_limited).abs() / l1_limited < 1e-9, "{g}");
        assert!(g < m.peak_fp64_gflops);
    }

    #[test]
    fn steady_state_tiled_reaches_the_compute_ceiling() {
        // TILE× less global traffic flips the binding ceiling to compute.
        let m = GpuMachine::a100();
        let n = 4096.0;
        let p = GpuKernelProfile {
            flops: 2.0 * n * n * n,
            l1_bytes: (n * n * n * 2.0 / 16.0 + n * n) * 8.0,
            dram_bytes: 0.0,
        };
        let g = steady_state_gflops(&m, Precision::Double, &p, 1.0, 0.0);
        assert!(
            (g - m.peak_fp64_gflops).abs() / m.peak_fp64_gflops < 0.01,
            "{g}"
        );
    }

    #[test]
    fn tensor_core_rate_uses_the_matrix_peak() {
        let m = GpuMachine::a100();
        let n = 4096.0;
        let p = GpuKernelProfile {
            flops: 2.0 * n * n * n,
            // FP16 inputs halve the staged traffic relative to FP32.
            l1_bytes: (n * n * n * 2.0 / 16.0) * 2.0 + n * n * 4.0,
            dram_bytes: 0.0,
        };
        let tensor = tensor_core_gflops(&m, &p, 1.0, 0.0);
        let vector = steady_state_gflops(&m, Precision::Half, &p, 1.0, 0.0);
        // At 1/16 traffic intensity even the matrix units are LSU-bound,
        // but still well above the vector-FP16 compute rate.
        assert!(tensor > vector, "tensor {tensor} vs vector {vector}");
        assert!(tensor <= m.peak_tensor_fp16_gflops);
    }

    #[test]
    fn steady_state_derates_with_occupancy() {
        let m = GpuMachine::mi250x_gcd();
        let p = naive_profile(2048.0, 8.0);
        let low = steady_state_gflops(&m, Precision::Double, &p, 0.05, 0.0);
        let sat = steady_state_gflops(&m, Precision::Double, &p, OCCUPANCY_SATURATION, 0.0);
        let full = steady_state_gflops(&m, Precision::Double, &p, 1.0, 0.0);
        assert!(low < sat);
        // Past the saturation knee extra occupancy stops helping.
        assert!((sat - full).abs() < 1e-9);
    }

    #[test]
    fn curves_flatten_with_size() {
        // GFLOPS vs n rises while launch overhead amortises, then goes
        // flat — the shape of the paper's Figs. 6–7.
        let m = GpuMachine::a100();
        let mut prev = 0.0;
        for n in [512u64, 1024, 2048, 4096, 8192] {
            let exec = GpuExecution::vendor_baseline(&m, grid_blocks(n), 2);
            let e =
                estimate_gpu_kernel(&m, Precision::Double, &naive_profile(n as f64, 8.0), &exec);
            assert!(e.gflops >= prev * 0.98, "n={n}: {} < {prev}", e.gflops);
            prev = e.gflops;
        }
    }
}
