//! Hardware descriptions and analytical timing models for the four
//! node architectures of the paper:
//!
//! * **Crusher CPU** — AMD EPYC 7A53 "Trento", 64 cores over 4 NUMA
//!   domains (Frontier's test bed),
//! * **Wombat CPU** — Ampere Altra, 80 Arm Neoverse-N1 cores, 1 NUMA
//!   domain,
//! * **Crusher GPU** — AMD MI250X (modelled as a single GCD, which is how
//!   a single-GPU job sees it),
//! * **Wombat GPU** — NVIDIA A100.
//!
//! The timing models are hierarchical rooflines with explicit overhead
//! terms. They consume *mechanistic inputs* — kernel flop/traffic
//! profiles (from `perfport-gpusim` counters or analytic footprints),
//! thread placement (from `perfport-pool`), occupancy, divergence, and
//! the per-programming-model code-generation efficiency from
//! `perfport-models` — and produce time/GFLOPS estimates whose *shape*
//! over matrix size reproduces the paper's figures. See `DESIGN.md` for
//! the substitution argument.

pub mod cpu;
pub mod cpu_model;
pub mod gpu;
pub mod gpu_model;
pub mod precision;
pub mod roofline;

pub use cpu::CpuMachine;
pub use cpu_model::{estimate_cpu_gemm, numa_locality, CpuExecution};
pub use gpu::GpuMachine;
pub use gpu_model::{
    estimate_gpu_kernel, steady_state_gflops, tensor_core_gflops, GpuExecution, GpuKernelProfile,
};
pub use precision::Precision;
pub use roofline::{Bound, Estimate, Roofline};

/// Square (or rectangular) GEMM problem shape: `C (m×n) += A (m×k) · B
/// (k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Contraction length.
    pub k: usize,
}

impl GemmShape {
    /// Square `n×n×n` problem — the paper's sweep variable.
    pub fn square(n: usize) -> Self {
        GemmShape { m: n, n, k: n }
    }

    /// Total floating-point operations (`2·m·n·k`).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape_flops() {
        assert_eq!(GemmShape::square(10).flops(), 2000.0);
        let s = GemmShape { m: 2, n: 3, k: 4 };
        assert_eq!(s.flops(), 48.0);
    }
}
