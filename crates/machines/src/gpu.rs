//! GPU descriptions: performance envelopes paired with a
//! `perfport-gpusim` device class.

use crate::precision::Precision;
use perfport_gpusim::DeviceClass;
use serde::Serialize;

/// A GPU, described by the parameters the timing model needs.
#[derive(Debug, Clone, Serialize)]
pub struct GpuMachine {
    /// Marketing name.
    pub name: &'static str,
    /// Host system in the paper.
    pub system: &'static str,
    /// Execution-semantics class for the simulator.
    #[serde(skip)]
    pub class: DeviceClass,
    /// Streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub sms: u32,
    /// Peak vector FP64, GFLOP/s (no tensor cores — the paper's kernels
    /// are plain FMA loops).
    pub peak_fp64_gflops: f64,
    /// Peak vector FP32, GFLOP/s.
    pub peak_fp32_gflops: f64,
    /// Peak vector FP16, GFLOP/s.
    pub peak_fp16_gflops: f64,
    /// Peak matrix-unit FP16-in/FP32-accumulate rate, GFLOP/s (tensor
    /// cores on NVIDIA, matrix cores on CDNA2) — reachable only through
    /// MMA fragments, never from a scalar FMA loop.
    pub peak_tensor_fp16_gflops: f64,
    /// Sustained HBM bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// SM clock, GHz.
    pub clock_ghz: f64,
    /// L1/LSU throughput per SM, bytes per cycle (bounds streaming
    /// kernels that do two loads per FMA — the naive GEMM's real ceiling).
    pub l1_bytes_per_cycle_per_sm: f64,
    /// Kernel launch latency, microseconds (vendor runtime baseline;
    /// programming models scale it).
    pub launch_latency_us: f64,
}

impl GpuMachine {
    /// Peak GFLOP/s at a precision.
    pub fn peak_gflops(&self, p: Precision) -> f64 {
        match p {
            Precision::Double => self.peak_fp64_gflops,
            Precision::Single => self.peak_fp32_gflops,
            Precision::Half => self.peak_fp16_gflops,
        }
    }

    /// Aggregate L1/LSU bandwidth, GB/s.
    pub fn l1_bw_gbs(&self) -> f64 {
        f64::from(self.sms) * self.clock_ghz * self.l1_bytes_per_cycle_per_sm
    }

    /// Wombat's NVIDIA A100 (40 GB).
    pub fn a100() -> Self {
        GpuMachine {
            name: "NVIDIA A100",
            system: "Wombat",
            class: DeviceClass::NvidiaLike,
            sms: 108,
            peak_fp64_gflops: 9_700.0,
            peak_fp32_gflops: 19_500.0,
            // Non-tensor FP16 vector rate (tensor cores are the
            // separate matrix-unit rate below, unreachable from a
            // hand-rolled FMA loop).
            peak_fp16_gflops: 39_000.0,
            peak_tensor_fp16_gflops: 312_000.0,
            mem_bw_gbs: 1_555.0,
            clock_ghz: 1.41,
            l1_bytes_per_cycle_per_sm: 128.0,
            launch_latency_us: 8.0,
        }
    }

    /// Crusher's AMD MI250X, one GCD (a single-GPU job addresses one
    /// Graphics Compute Die; the paper launches on one GPU id).
    pub fn mi250x_gcd() -> Self {
        GpuMachine {
            name: "AMD MI250X (1 GCD)",
            system: "Crusher",
            class: DeviceClass::AmdLike,
            sms: 110,
            peak_fp64_gflops: 23_950.0,
            peak_fp32_gflops: 23_950.0,
            peak_fp16_gflops: 95_700.0,
            // Half of the full MI250X's 383 TF FP16 matrix rate.
            peak_tensor_fp16_gflops: 191_500.0,
            mem_bw_gbs: 1_638.0,
            clock_ghz: 1.7,
            l1_bytes_per_cycle_per_sm: 64.0,
            launch_latency_us: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_spec_sheet() {
        let g = GpuMachine::a100();
        assert_eq!(g.class, DeviceClass::NvidiaLike);
        assert_eq!(g.sms, 108);
        assert!(
            (g.peak_gflops(Precision::Single) / g.peak_gflops(Precision::Double) - 2.0).abs() < 0.1
        );
    }

    #[test]
    fn mi250x_spec_sheet() {
        let g = GpuMachine::mi250x_gcd();
        assert_eq!(g.class, DeviceClass::AmdLike);
        // CDNA2 vector FP32 == FP64 rate (the paper's FP32 gains on
        // MI250X are modest for exactly this reason).
        assert_eq!(g.peak_fp32_gflops, g.peak_fp64_gflops);
        assert!(g.mem_bw_gbs > 1_500.0);
    }

    #[test]
    fn precision_dispatch() {
        let g = GpuMachine::a100();
        assert_eq!(g.peak_gflops(Precision::Double), 9_700.0);
        assert_eq!(g.peak_gflops(Precision::Half), 39_000.0);
    }

    #[test]
    fn tensor_rate_dwarfs_the_vector_rate() {
        // The matrix units are the whole point of the mixed-precision
        // story: both parts keep an ~8× and ~2× step over vector FP16.
        for g in [GpuMachine::a100(), GpuMachine::mi250x_gcd()] {
            assert!(
                g.peak_tensor_fp16_gflops >= 2.0 * g.peak_fp16_gflops,
                "{}",
                g.name
            );
        }
    }
}
