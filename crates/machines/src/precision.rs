//! The three floating-point precisions swept by the study.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Floating-point precision of a GEMM experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE binary64.
    Double,
    /// IEEE binary32.
    Single,
    /// IEEE binary16 (inputs; the paper stores half-input products in
    /// single in Fig. 1c).
    Half,
}

impl Precision {
    /// All precisions, double first (the paper's presentation order).
    pub const ALL: [Precision; 3] = [Precision::Double, Precision::Single, Precision::Half];

    /// Bytes per element.
    pub fn bytes(&self) -> usize {
        match self {
            Precision::Double => 8,
            Precision::Single => 4,
            Precision::Half => 2,
        }
    }

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::Double => "FP64",
            Precision::Single => "FP32",
            Precision::Half => "FP16",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_labels() {
        assert_eq!(Precision::Double.bytes(), 8);
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Half.bytes(), 2);
        assert_eq!(Precision::Half.to_string(), "FP16");
        assert_eq!(Precision::ALL.len(), 3);
    }
}
