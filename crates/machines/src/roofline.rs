//! Roofline primitives shared by the CPU and GPU timing models.

use serde::Serialize;
use std::fmt;

/// Which resource bound an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Bound {
    /// Floating-point throughput.
    Compute,
    /// DRAM / HBM bandwidth.
    MemoryBandwidth,
    /// On-chip bandwidth (shared LLC on CPUs, L1/LSU throughput on
    /// GPUs).
    OnChipBandwidth,
    /// Fixed overheads (fork-join, launch latency) dominate.
    Overhead,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Compute => write!(f, "compute"),
            Bound::MemoryBandwidth => write!(f, "memory-bandwidth"),
            Bound::OnChipBandwidth => write!(f, "onchip-bandwidth"),
            Bound::Overhead => write!(f, "overhead"),
        }
    }
}

/// A time/throughput estimate from a timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Estimate {
    /// Predicted execution time, seconds.
    pub seconds: f64,
    /// Predicted throughput, GFLOP/s.
    pub gflops: f64,
    /// The binding resource.
    pub bound: Bound,
}

impl Estimate {
    /// Builds an estimate from a flop count and component times; the
    /// slowest component is the bound, with `overhead` added serially.
    pub fn from_components(flops: f64, overhead_s: f64, components: &[(Bound, f64)]) -> Estimate {
        assert!(!components.is_empty(), "need at least one component");
        let (mut bound, mut worst) = components[0];
        for &(b, t) in &components[1..] {
            if t > worst {
                worst = t;
                bound = b;
            }
        }
        let seconds = worst + overhead_s;
        if overhead_s > worst {
            bound = Bound::Overhead;
        }
        Estimate {
            seconds,
            gflops: if seconds > 0.0 {
                flops / seconds / 1e9
            } else {
                f64::INFINITY
            },
            bound,
        }
    }
}

/// A classic two-ceiling roofline: peak compute and memory bandwidth.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Roofline {
    /// Peak compute, GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub bw_gbs: f64,
}

impl Roofline {
    /// Attainable GFLOP/s at arithmetic intensity `ai` (flops/byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.bw_gbs * ai).min(self.peak_gflops)
    }

    /// The ridge point: the arithmetic intensity where the kernel stops
    /// being memory bound.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.bw_gbs
    }

    /// `true` when a kernel of intensity `ai` is memory bound.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_ai()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_follows_both_ceilings() {
        let r = Roofline {
            peak_gflops: 1000.0,
            bw_gbs: 100.0,
        };
        assert_eq!(r.ridge_ai(), 10.0);
        assert_eq!(r.attainable(1.0), 100.0); // memory bound
        assert_eq!(r.attainable(100.0), 1000.0); // compute bound
        assert_eq!(r.attainable(10.0), 1000.0); // exactly at the ridge
        assert!(r.is_memory_bound(5.0));
        assert!(!r.is_memory_bound(50.0));
    }

    #[test]
    fn estimate_picks_slowest_component() {
        let e = Estimate::from_components(
            2e9,
            0.0,
            &[(Bound::Compute, 1.0), (Bound::MemoryBandwidth, 2.0)],
        );
        assert_eq!(e.bound, Bound::MemoryBandwidth);
        assert_eq!(e.seconds, 2.0);
        assert!((e.gflops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_dominates_small_problems() {
        let e = Estimate::from_components(2e6, 1.0, &[(Bound::Compute, 0.001)]);
        assert_eq!(e.bound, Bound::Overhead);
        assert!(e.seconds > 1.0);
    }

    #[test]
    fn gflops_consistent_with_seconds() {
        let e = Estimate::from_components(4e9, 0.5, &[(Bound::Compute, 1.5)]);
        assert!((e.gflops - 4e9 / 2.0 / 1e9).abs() < 1e-12);
    }
}
