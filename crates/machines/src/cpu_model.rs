//! Analytical timing model for the multithreaded CPU GEMM of Fig. 2.
//!
//! The hand-rolled coarse-granularity kernel (`i`-parallel, streaming
//! inner loop) has three candidate bottlenecks, modelled as a
//! three-ceiling roofline plus a serial overhead term:
//!
//! 1. **Compute** — `cores × clock × SIMD lanes × 2 × FMA pipes`,
//!    derated by the programming model's code-generation efficiency and a
//!    fixed streaming-kernel factor (the unblocked inner loop issues two
//!    loads and a store per FMA, which caps port utilisation around ½).
//! 2. **LLC streaming** — every inner-loop iteration rereads an element
//!    of `B` from beyond the private caches (`m·n·k` touches); these hit
//!    in the shared LLC while `B` fits and spill to DRAM as it stops
//!    fitting.
//! 3. **DRAM** — compulsory traffic (`A`, `C`, one pass of `B`) plus the
//!    LLC-miss reuse traffic; derated by NUMA locality when threads are
//!    unpinned, which is the mechanism behind the paper's
//!    pinning-sensitive results on the 4-domain EPYC.
//!
//! Overhead: one fork-join per GEMM (model-scaled), amplified by the
//! measured or analytic load imbalance.

use crate::cpu::CpuMachine;
use crate::precision::Precision;
use crate::roofline::{Bound, Estimate};
use crate::GemmShape;

/// Fraction of FMA peak reachable by the unblocked streaming inner loop
/// (load/store port pressure, no register blocking).
pub const STREAM_KERNEL_EFFICIENCY: f64 = 0.5;

/// Fraction of the inner-loop stream that falls out of the shared
/// sliding window (and hence to DRAM) once `B` exceeds the LLC: threads
/// drift apart, so cross-thread reuse is imperfect at large sizes.
pub const DESYNC_SPILL_FRACTION: f64 = 0.15;

/// How a programming model executes the kernel on the machine.
#[derive(Debug, Clone, Copy)]
pub struct CpuExecution {
    /// Worker threads (the paper uses one per core).
    pub threads: usize,
    /// Whether threads are bound to cores (`OMP_PROC_BIND`,
    /// `JULIA_EXCLUSIVE`); Numba cannot pin.
    pub pinned: bool,
    /// Code-generation quality relative to the vendor compiler, `0..=1`
    /// (from `perfport-models`).
    pub codegen_efficiency: f64,
    /// Fork-join cost for one parallel region, µs (machine baseline ×
    /// model multiplier).
    pub region_overhead_us: f64,
    /// Load imbalance factor (max/mean thread work, ≥ 1).
    pub imbalance: f64,
}

impl CpuExecution {
    /// A vendor-OpenMP-like execution: all cores, pinned, perfect
    /// codegen, machine-baseline overhead.
    pub fn vendor_baseline(machine: &CpuMachine) -> Self {
        CpuExecution {
            threads: machine.total_cores(),
            pinned: true,
            codegen_efficiency: 1.0,
            region_overhead_us: machine.fork_join_us,
            imbalance: 1.0,
        }
    }
}

/// Effective bandwidth multiplier from thread placement: pinned threads
/// stream from their own domain; unpinned threads land on a random
/// domain, so `1/D` of accesses are local and the rest pay the remote
/// penalty.
pub fn numa_locality(machine: &CpuMachine, pinned: bool) -> f64 {
    if pinned || machine.numa_domains <= 1 {
        1.0
    } else {
        let d = machine.numa_domains as f64;
        (1.0 / d) + (1.0 - 1.0 / d) * machine.remote_numa_penalty
    }
}

/// Predicts the execution time of one `C += A·B` at `precision` under
/// `exec`.
///
/// ```
/// use perfport_machines::{estimate_cpu_gemm, CpuExecution, CpuMachine, GemmShape, Precision};
///
/// let crusher = CpuMachine::epyc_7a53();
/// let exec = CpuExecution::vendor_baseline(&crusher);
/// let e = estimate_cpu_gemm(&crusher, Precision::Double, &GemmShape::square(4096), &exec);
/// assert!(e.gflops > 100.0 && e.gflops < crusher.peak_gflops(Precision::Double));
/// ```
///
/// # Panics
///
/// Panics if `exec.threads == 0` or efficiency/imbalance are out of
/// range.
pub fn estimate_cpu_gemm(
    machine: &CpuMachine,
    precision: Precision,
    shape: &GemmShape,
    exec: &CpuExecution,
) -> Estimate {
    assert!(exec.threads > 0, "need at least one thread");
    assert!(
        exec.codegen_efficiency > 0.0 && exec.codegen_efficiency <= 1.5,
        "codegen efficiency out of range"
    );
    assert!(exec.imbalance >= 1.0, "imbalance is max/mean, >= 1");

    let flops = shape.flops();
    let bytes = precision.bytes() as f64;
    let (m, n, k) = (shape.m as f64, shape.n as f64, shape.k as f64);

    // --- compute ceiling ---
    let cores_used = exec.threads.min(machine.total_cores()) as f64;
    let rate = cores_used * machine.peak_core_gflops(precision) * STREAM_KERNEL_EFFICIENCY * 1e9;
    let compute_s = flops / rate * exec.imbalance;

    // --- cache / memory ceilings ---
    let locality = numa_locality(machine, exec.pinned);
    let llc_bytes = machine.llc_mib * 1024.0 * 1024.0;
    let b_bytes = k * n * bytes;

    // Inner-loop B streaming: m·k·n touches served beyond private caches.
    // Under the static schedule every thread streams the *same* row of B
    // at roughly the same time, so the live working set is a sliding
    // window of a few rows — the LLC services the stream even when B
    // itself vastly exceeds capacity. Thread desynchronisation erodes
    // that sharing as B outgrows the LLC, re-materialising a fraction of
    // the touches as DRAM traffic.
    let inner_touches_bytes = m * k * n * bytes;
    let llc_s = inner_touches_bytes / (machine.llc_bw_gbs * locality * 1e9);

    let spill = (1.0 - llc_bytes / b_bytes).clamp(0.0, 1.0) * DESYNC_SPILL_FRACTION;
    // DRAM: compulsory A + C(read+write) + one pass of B, plus the
    // desynchronised share of the inner-loop stream.
    let dram_bytes = (m * k + 2.0 * m * n + k * n) * bytes + inner_touches_bytes * spill;
    let dram_s = dram_bytes / (machine.total_bw_gbs() * locality * 1e9);

    let overhead_s = exec.region_overhead_us * 1e-6;

    // Code-generation quality derates every ceiling, not just FMA issue:
    // un-eliminated bounds checks and weaker vectorisation slow the
    // streaming loop whether it is port-bound or cache-bound. This
    // mirrors the achieved-fraction treatment in the GPU model.
    let q = exec.codegen_efficiency;
    Estimate::from_components(
        flops,
        overhead_s,
        &[
            (Bound::Compute, compute_s / q),
            (Bound::OnChipBandwidth, llc_s / q),
            (Bound::MemoryBandwidth, dram_s / q),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epyc() -> CpuMachine {
        CpuMachine::epyc_7a53()
    }

    fn vendor(shape_n: usize, machine: &CpuMachine) -> Estimate {
        estimate_cpu_gemm(
            machine,
            Precision::Double,
            &GemmShape::square(shape_n),
            &CpuExecution::vendor_baseline(machine),
        )
    }

    #[test]
    fn throughput_is_in_a_sane_band() {
        // Naive FP64 GEMM on a 64-core Zen 3 node: hundreds of GFLOP/s,
        // far below the 2.5 TF peak but far above serial.
        let e = vendor(4096, &epyc());
        assert!(e.gflops > 100.0, "{e:?}");
        assert!(e.gflops < 1500.0, "{e:?}");
    }

    #[test]
    fn single_precision_outperforms_double() {
        let m = epyc();
        let shape = GemmShape::square(4096);
        let exec = CpuExecution::vendor_baseline(&m);
        let d = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        let s = estimate_cpu_gemm(&m, Precision::Single, &shape, &exec);
        assert!(s.gflops > d.gflops * 1.5, "d={d:?} s={s:?}");
    }

    #[test]
    fn fp16_on_amd_cpu_is_very_slow() {
        // The paper: "very low performance on Crusher AMD CPUs" for Julia
        // FP16 — no native half arithmetic.
        let m = epyc();
        let shape = GemmShape::square(2048);
        let exec = CpuExecution::vendor_baseline(&m);
        let h = estimate_cpu_gemm(&m, Precision::Half, &shape, &exec);
        let d = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        assert!(h.gflops < d.gflops / 4.0, "h={h:?} d={d:?}");
    }

    #[test]
    fn fp16_on_arm_is_fast() {
        let m = CpuMachine::ampere_altra();
        let shape = GemmShape::square(2048);
        let exec = CpuExecution::vendor_baseline(&m);
        let h = estimate_cpu_gemm(&m, Precision::Half, &shape, &exec);
        let s = estimate_cpu_gemm(&m, Precision::Single, &shape, &exec);
        assert!(h.gflops >= s.gflops, "h={h:?} s={s:?}");
    }

    #[test]
    fn unpinned_threads_lose_bandwidth_on_numa() {
        let m = epyc();
        assert!((numa_locality(&m, true) - 1.0).abs() < 1e-12);
        let unpinned = numa_locality(&m, false);
        assert!(unpinned < 0.7 && unpinned > 0.3, "{unpinned}");
        // Single-domain Altra is indifferent to pinning.
        let altra = CpuMachine::ampere_altra();
        assert_eq!(numa_locality(&altra, false), 1.0);
    }

    #[test]
    fn unpinned_execution_is_slower_on_crusher_but_not_wombat() {
        for (machine, should_differ) in [(epyc(), true), (CpuMachine::ampere_altra(), false)] {
            let shape = GemmShape::square(4096);
            let mut exec = CpuExecution::vendor_baseline(&machine);
            let pinned = estimate_cpu_gemm(&machine, Precision::Double, &shape, &exec);
            exec.pinned = false;
            let floating = estimate_cpu_gemm(&machine, Precision::Double, &shape, &exec);
            if should_differ {
                assert!(floating.gflops < pinned.gflops * 0.85);
            } else {
                assert!((floating.gflops - pinned.gflops).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn small_problems_are_overhead_bound() {
        let m = epyc();
        let e = estimate_cpu_gemm(
            &m,
            Precision::Double,
            &GemmShape::square(32),
            &CpuExecution::vendor_baseline(&m),
        );
        assert_eq!(e.bound, Bound::Overhead);
        // And throughput rises with size from there.
        let larger = vendor(1024, &m);
        assert!(larger.gflops > e.gflops);
    }

    #[test]
    fn codegen_efficiency_scales_compute() {
        let m = epyc();
        let shape = GemmShape::square(2048);
        let mut exec = CpuExecution::vendor_baseline(&m);
        let full = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        exec.codegen_efficiency = 0.5;
        let half = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        assert!((full.gflops / half.gflops - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_threads_is_faster_until_core_count() {
        let m = epyc();
        let shape = GemmShape::square(4096);
        let mut prev = 0.0;
        for threads in [1, 2, 8, 32, 64] {
            let exec = CpuExecution {
                threads,
                ..CpuExecution::vendor_baseline(&m)
            };
            let e = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
            assert!(e.gflops >= prev, "threads={threads}");
            prev = e.gflops;
        }
        // Oversubscription does not add compute.
        let over = estimate_cpu_gemm(
            &m,
            Precision::Double,
            &shape,
            &CpuExecution {
                threads: 128,
                ..CpuExecution::vendor_baseline(&m)
            },
        );
        assert!(over.gflops <= prev * 1.001);
    }

    #[test]
    fn llc_spill_slows_large_b() {
        // Same machine with a tiny LLC: large-B problems get slower.
        let mut small_cache = epyc();
        small_cache.llc_mib = 8.0;
        let shape = GemmShape::square(8192);
        let exec = CpuExecution::vendor_baseline(&small_cache);
        let spilled = estimate_cpu_gemm(&small_cache, Precision::Double, &shape, &exec);
        let cached = vendor(8192, &epyc());
        assert!(spilled.gflops < cached.gflops);
        assert_eq!(spilled.bound, Bound::MemoryBandwidth);
    }

    #[test]
    fn imbalance_inflates_compute_time() {
        let m = epyc();
        let shape = GemmShape::square(2048);
        let mut exec = CpuExecution::vendor_baseline(&m);
        exec.imbalance = 2.0;
        let skewed = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        exec.imbalance = 1.0;
        let balanced = estimate_cpu_gemm(&m, Precision::Double, &shape, &exec);
        assert!(skewed.seconds >= balanced.seconds);
    }
}
