//! Criterion benchmarks of the work-sharing runtime: fork-join cost,
//! schedule dispatch overhead, and barrier throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfport_pool::{Schedule, SenseBarrier, ThreadPool};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn bench_fork_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_join_empty_region");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pool, |b, pool| {
            b.iter(|| {
                pool.run_region(&|tid| {
                    black_box(tid);
                })
            })
        });
    }
    group.finish();
}

fn bench_schedule_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_dispatch_10k_items");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let pool = ThreadPool::new(4);
    let counter = AtomicU64::new(0);
    for (label, schedule) in [
        ("static_block", Schedule::StaticBlock),
        ("dynamic_1", Schedule::Dynamic { chunk: 1 }),
        ("dynamic_64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided { min_chunk: 1 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let stats = pool.parallel_for_each(10_000, schedule, |i| {
                    counter.fetch_add(i as u64, Ordering::Relaxed);
                });
                black_box(stats)
            })
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("sense_barrier_100_phases");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for team in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(team), &team, |b, &team| {
            b.iter(|| {
                let barrier = Arc::new(SenseBarrier::new(team));
                std::thread::scope(|s| {
                    for _ in 0..team {
                        let barrier = barrier.clone();
                        s.spawn(move || {
                            for _ in 0..100 {
                                black_box(barrier.wait());
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fork_join,
    bench_schedule_dispatch,
    bench_barrier
);
criterion_main!(benches);
