//! Criterion benchmarks of the SIMT simulator itself: functional GEMM
//! launches per device class, the coalescing analysis, and race-detector
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfport_gemm::{gpu_gemm, GpuVariant, Layout, Matrix};
use perfport_gpusim::{Dim3, Gpu, LaunchConfig, LaunchOptions};
use std::hint::black_box;
use std::time::Duration;

fn bench_sim_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_gemm_launch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [64usize, 128] {
        let a = Matrix::<f32>::random(n, n, Layout::RowMajor, 1);
        let b = Matrix::<f32>::random(n, n, Layout::RowMajor, 2);
        for variant in [GpuVariant::Cuda, GpuVariant::Hip] {
            group.bench_with_input(BenchmarkId::new(variant.name(), n), &n, |bench, _| {
                let gpu = Gpu::new(variant.device_class());
                bench.iter(|| {
                    let (cm, stats) = gpu_gemm(
                        &gpu,
                        variant,
                        black_box(&a),
                        black_box(&b),
                        Dim3::d2(16, 16),
                    )
                    .unwrap();
                    black_box((cm, stats))
                })
            });
        }
    }
    group.finish();
}

fn bench_race_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("race_detector_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 4096usize;
    for (label, detect) in [("off", false), ("on", true)] {
        group.bench_function(label, |bench| {
            let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
            let src = gpu.alloc_filled(n, 1.0f32);
            let dst = gpu.alloc_filled(n, 0.0f32);
            let cfg = LaunchConfig::cover1d(n as u32, 256);
            let opts = LaunchOptions {
                detect_races: detect,
                ..Default::default()
            };
            bench.iter(|| {
                let stats = gpu
                    .launch_with(cfg, opts, |t| {
                        let i = t.global_x();
                        if i < n {
                            dst.write(t, i, src.read(t, i) * 2.0);
                        }
                    })
                    .unwrap();
                black_box(stats)
            })
        });
    }
    group.finish();
}

fn bench_host_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_host_parallelism");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 96usize;
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 2);
    for host_threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(host_threads),
            &host_threads,
            |bench, &ht| {
                let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
                bench.iter(|| {
                    let da = gpu.alloc_from_slice(a.as_slice());
                    let db = gpu.alloc_from_slice(b.as_slice());
                    let dc = gpu.alloc_filled(n * n, 0.0f64);
                    let cfg = LaunchConfig::cover2d(n as u32, n as u32, Dim3::d2(32, 32));
                    let opts = LaunchOptions {
                        host_threads: ht,
                        detect_races: false,
                    };
                    let stats = gpu
                        .launch_with(cfg, opts, |t| {
                            let (col, row) = t.grid2();
                            if row < n && col < n {
                                let mut sum = 0.0;
                                for l in 0..n {
                                    sum += da.read(t, row * n + l) * db.read(t, l * n + col);
                                }
                                dc.write(t, row * n + col, sum);
                                t.tally_flops(2 * n as u64);
                            }
                        })
                        .unwrap();
                    black_box(stats)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_gemm,
    bench_race_detector,
    bench_host_parallelism
);
criterion_main!(benches);
