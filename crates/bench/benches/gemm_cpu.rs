//! Criterion microbenchmarks of the native CPU GEMM kernels: loop-order
//! ablation, per-model variants, precisions, thread scaling, and the
//! tile-size sweep (experiment A2 support data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfport_gemm::{
    gemm_flops, par_gemm, serial::gemm_blocked, serial::gemm_loop_order, tuned, CpuVariant, Layout,
    LoopOrder, Matrix, PackArena, TileShape, TunedParams,
};
use perfport_half::F16;
use perfport_pool::{Schedule, ThreadPool};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 160;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_loop_orders(c: &mut Criterion) {
    let a = Matrix::<f64>::random(N, N, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(N, N, Layout::RowMajor, 2);
    let mut group = quick(c).benchmark_group("loop_orders_f64_rowmajor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(gemm_flops(N, N, N)));
    for order in LoopOrder::ALL {
        group.bench_function(order.name(), |bench| {
            bench.iter(|| {
                let mut cm = Matrix::<f64>::zeros(N, N, Layout::RowMajor);
                gemm_loop_order(order, black_box(&a), black_box(&b), &mut cm);
                black_box(cm)
            })
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("model_variants_serial_f64");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for v in CpuVariant::ALL {
        let layout = v.layout();
        let a = Matrix::<f64>::random(N, N, layout, 1);
        let b = Matrix::<f64>::random(N, N, layout, 2);
        group.bench_function(v.name(), |bench| {
            bench.iter(|| {
                let mut cm = Matrix::<f64>::zeros(N, N, layout);
                v.run_serial(black_box(&a), black_box(&b), &mut cm);
                black_box(cm)
            })
        });
    }
    group.finish();
}

fn bench_precisions(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("precision_serial_ikj");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    macro_rules! prec_case {
        ($t:ty, $label:expr) => {
            let a = Matrix::<$t>::random(N, N, Layout::RowMajor, 1);
            let b = Matrix::<$t>::random(N, N, Layout::RowMajor, 2);
            group.bench_function($label, |bench| {
                bench.iter(|| {
                    let mut cm = Matrix::<$t>::zeros(N, N, Layout::RowMajor);
                    gemm_loop_order(LoopOrder::Ikj, black_box(&a), black_box(&b), &mut cm);
                    black_box(cm)
                })
            });
        };
    }
    prec_case!(f64, "fp64");
    prec_case!(f32, "fp32");
    prec_case!(F16, "fp16_soft");
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let n = 256;
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 2);
    let mut group = quick(c).benchmark_group("thread_scaling_openmp_style");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let max = std::thread::available_parallelism().map_or(2, |p| p.get().min(8));
    let mut threads = 1;
    while threads <= max {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &pool,
            |bench, pool| {
                bench.iter(|| {
                    let mut cm = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
                    par_gemm(
                        pool,
                        CpuVariant::OpenMpC,
                        black_box(&a),
                        black_box(&b),
                        &mut cm,
                        Schedule::StaticBlock,
                    );
                    black_box(cm)
                })
            },
        );
        threads *= 2;
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let n = 256;
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 2);
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let mut group = quick(c).benchmark_group("schedule_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (label, schedule) in [
        ("static_block", Schedule::StaticBlock),
        ("static_chunk4", Schedule::StaticChunked { chunk: 4 }),
        ("dynamic_chunk4", Schedule::Dynamic { chunk: 4 }),
        ("guided", Schedule::Guided { min_chunk: 2 }),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut cm = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
                par_gemm(
                    &pool,
                    CpuVariant::OpenMpC,
                    black_box(&a),
                    black_box(&b),
                    &mut cm,
                    schedule,
                );
                black_box(cm)
            })
        });
    }
    group.finish();
}

fn bench_tiles(c: &mut Criterion) {
    let a = Matrix::<f64>::random(N, N, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(N, N, Layout::RowMajor, 2);
    let mut group = quick(c).benchmark_group("tile_sweep_blocked_gemm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for tile in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |bench, &tile| {
            bench.iter(|| {
                let mut cm = Matrix::<f64>::zeros(N, N, Layout::RowMajor);
                gemm_blocked(black_box(&a), black_box(&b), &mut cm, tile);
                black_box(cm)
            })
        });
    }
    group.finish();
}

fn bench_tuned(c: &mut Criterion) {
    let n = 256;
    let mut group = quick(c).benchmark_group("tuned_vendor_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.throughput(criterion::Throughput::Elements(gemm_flops(n, n, n)));

    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 2);
    // Serial packed kernel per register-tile shape (the A4 sweep).
    for tile in TileShape::ALL {
        let params = TunedParams::with_tile(
            perfport_pool::CacheInfo::host(),
            tile,
            std::mem::size_of::<f64>(),
        );
        let mut arena = PackArena::new();
        group.bench_function(format!("serial_{}", tile.name()), |bench| {
            bench.iter(|| {
                let mut cm = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
                tuned::gemm_serial(black_box(&a), black_box(&b), &mut cm, &params, &mut arena);
                black_box(cm)
            })
        });
    }
    // Parallel tuned vs the fastest naive variant, same pool.
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let params = TunedParams::host::<f64>();
    group.bench_function("parallel_auto_tile", |bench| {
        bench.iter(|| {
            let mut cm = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
            tuned::gemm(&pool, black_box(&a), black_box(&b), &mut cm, &params);
            black_box(cm)
        })
    });
    group.bench_function("parallel_naive_openmp", |bench| {
        bench.iter(|| {
            let mut cm = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
            par_gemm(
                &pool,
                CpuVariant::OpenMpC,
                black_box(&a),
                black_box(&b),
                &mut cm,
                Schedule::StaticBlock,
            );
            black_box(cm)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loop_orders,
    bench_variants,
    bench_precisions,
    bench_thread_scaling,
    bench_schedules,
    bench_tiles,
    bench_tuned
);
criterion_main!(benches);
