//! Criterion benchmarks of the software binary16: conversion and
//! arithmetic throughput vs. native f32 (quantifies the CPU FP16
//! emulation cost the paper observed on Zen 3).

use criterion::{criterion_group, criterion_main, Criterion};
use perfport_half::F16;
use std::hint::black_box;
use std::time::Duration;

const N: usize = 4096;

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("half_conversion");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let floats: Vec<f32> = (0..N).map(|i| i as f32 * 0.37).collect();
    group.bench_function("f32_to_f16", |b| {
        b.iter(|| {
            let v: Vec<F16> = black_box(&floats)
                .iter()
                .map(|&x| F16::from_f32(x))
                .collect();
            black_box(v)
        })
    });
    let halves: Vec<F16> = floats.iter().map(|&x| F16::from_f32(x)).collect();
    group.bench_function("f16_to_f32", |b| {
        b.iter(|| {
            let v: Vec<f32> = black_box(&halves).iter().map(|x| x.to_f32()).collect();
            black_box(v)
        })
    });
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("half_axpy_vs_f32");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let xs32: Vec<f32> = (0..N).map(|i| (i % 100) as f32 * 0.01).collect();
    let xs16: Vec<F16> = xs32.iter().map(|&x| F16::from_f32(x)).collect();
    group.bench_function("f32", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in black_box(&xs32) {
                acc = 1.5f32.mul_add(x, acc);
            }
            black_box(acc)
        })
    });
    group.bench_function("f16_soft", |b| {
        let alpha = F16::from_f32(1.5);
        b.iter(|| {
            let mut acc = F16::ZERO;
            for &x in black_box(&xs16) {
                acc = alpha.mul_add(x, acc);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conversion, bench_axpy);
criterion_main!(benches);
