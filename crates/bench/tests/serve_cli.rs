//! End-to-end checks of the `serve_gemm` serving harness: the dry-run
//! byte-stability golden contract, the batch ≡ serial `--verify` gate,
//! the `BENCH_serve.json` schema, and flag rejection.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_gemm"))
        .args(args)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("serve_gemm must run");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn out_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("perfport-serve-{}-{name}", std::process::id()))
}

/// The golden contract: dry-run output is byte-identical across repeated
/// runs and across any `--jobs`/`--threads`, because the stream and the
/// virtual timeline are pure functions of the seed.
#[test]
fn dry_run_is_byte_stable_across_runs_and_workers() {
    let (code, first, _) = run(&["--quick", "--dry-run", "--seed", "5", "--csv"]);
    assert_eq!(code, 0);
    assert!(first.contains("== serve_gemm dry-run (seed 5) =="));
    assert!(first.contains("latency ms: p50 "));
    for extra in [
        vec![],
        vec!["--jobs", "4"],
        vec!["--threads", "2"],
        vec!["--jobs", "7", "--threads", "3"],
    ] {
        let mut args = vec!["--quick", "--dry-run", "--seed", "5", "--csv"];
        args.extend(extra.iter());
        let (code, text, _) = run(&args);
        assert_eq!(code, 0);
        assert_eq!(
            text, first,
            "dry-run output must be byte-stable for args {args:?}"
        );
    }
    // A different seed is a genuinely different stream.
    let (_, other, _) = run(&["--quick", "--dry-run", "--seed", "6", "--csv"]);
    assert_ne!(first, other);
}

/// `--verify` runs every batch through the per-problem serial reference
/// and byte-compares: the bitwise contract, end to end, at several
/// worker counts.
#[test]
fn verify_passes_at_any_worker_count() {
    for jobs in ["1", "3"] {
        let out = out_path(&format!("verify-{jobs}.json"));
        let (code, stdout, stderr) = run(&[
            "--quick",
            "--verify",
            "--seed",
            "11",
            "--requests",
            "48",
            "--jobs",
            jobs,
            "--out",
            out.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "verify failed at {jobs} jobs:\n{stdout}\n{stderr}");
        assert!(
            stdout.contains("batch≡serial contract: OK (48 requests)"),
            "contract line missing at {jobs} jobs:\n{stdout}"
        );
        let _ = std::fs::remove_file(out);
    }
}

/// The emitted snapshot carries the advertised schema, the latency
/// percentiles, and an embedded provenance manifest — and `bench_diff`'s
/// parser accepts it.
#[test]
fn snapshot_schema_and_manifest() {
    let out = out_path("schema.json");
    let (code, stdout, stderr) = run(&[
        "--quick",
        "--seed",
        "42",
        "--requests",
        "40",
        "--jobs",
        "2",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let text = std::fs::read_to_string(&out).expect("snapshot must be written");
    assert!(text.contains("\"schema\": \"perfport-bench-serve/2\""));
    assert!(text.contains("\"schema\": \"perfport-manifest/1\""));
    let snap = perfport_bench::diff::parse_snapshot(&text).expect("bench_diff must parse it");
    assert_eq!(snap.schema, "perfport-bench-serve/2");
    assert!(snap.simd_isa.is_some(), "manifest ISA missing");
    // The always-on telemetry block must be populated: the measured
    // phase serves real batches, so the end-to-end latency histogram
    // and the per-bucket service-time histograms cannot be empty.
    let telemetry = snap.telemetry.as_ref().expect("telemetry block missing");
    let latency = telemetry
        .histograms
        .get("serve/latency_ns")
        .expect("serve/latency_ns histogram missing");
    assert_eq!(latency.count, 40, "one latency sample per request");
    assert!(
        telemetry
            .histograms
            .keys()
            .any(|k| k.starts_with("batch/service_ns/")),
        "per-bucket service-time histograms missing: {:?}",
        telemetry.histograms.keys().collect::<Vec<_>>()
    );
    assert!(
        telemetry.counters.get("pool/regions").copied().unwrap_or(0) > 0,
        "pool region counter missing from the measured phase"
    );
    assert_eq!(snap.points.len(), 1);
    let p = &snap.points[0];
    assert_eq!(p.n, 40);
    assert_eq!(p.precision, "SERVE");
    for key in [
        "inv_p50_ms",
        "inv_p95_ms",
        "inv_p99_ms",
        "sustained_gflops",
        "req_per_s",
    ] {
        assert!(p.gflops.contains_key(key), "metric {key} missing");
        assert!(p.gflops[key] > 0.0, "metric {key} not positive");
    }
    let _ = std::fs::remove_file(out);
}

/// Malformed or unknown flags print usage and exit 2, matching every
/// other harness binary; `--help` exits 0.
#[test]
fn flag_rejection_and_help() {
    for bad in [
        vec!["--seed"],
        vec!["--seed", "banana"],
        vec!["--requests", "0"],
        vec!["--batch", "0"],
        vec!["--rate", "-3"],
        vec!["--jobs", "zero"],
        vec!["--frobnicate"],
        vec!["--dry-run", "--verify"],
        vec!["--dry-run", "--inject-panic", "3"],
        vec!["--inject-panic", "banana"],
        vec!["--quick", "--sched", "graph", "--inject-panic", "3"],
        vec!["--quick", "--requests", "8", "--inject-panic", "99"],
    ] {
        let (code, _, stderr) = run(&bad);
        assert_eq!(code, 2, "args {bad:?} must exit 2:\n{stderr}");
        assert!(
            stderr.contains("usage: serve_gemm"),
            "usage missing for {bad:?}:\n{stderr}"
        );
    }
    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("usage: serve_gemm"));
    assert!(stdout.contains("--dry-run") && stdout.contains("--verify"));
}
