//! End-to-end post-mortem drill: `serve_gemm --inject-panic` must die
//! non-zero and leave a well-formed `flight-<pid>.json` whose last
//! event is the injected failure.
//!
//! This is the flight recorder's whole contract exercised through a
//! real binary: a panicking task rides the work queue into a pool
//! region, the worker's panic fires the first-trigger-wins dump, the
//! queue poisons, and the process dies — with the black box on disk.

use perfport_trace::json::{self, Json};
use std::path::PathBuf;
use std::process::Command;

fn flight_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("perfport-flight-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("flight dir must be creatable");
    dir
}

#[test]
fn injected_panic_dumps_a_parseable_flight_recording() {
    let dir = flight_dir("panic");
    let out_json = dir.join("BENCH_serve.json");
    let out = Command::new(env!("CARGO_BIN_EXE_serve_gemm"))
        .args([
            "--quick",
            "--requests",
            "40",
            "--jobs",
            "2",
            "--sched",
            "barrier",
            "--inject-panic",
            "7",
            "--out",
            out_json.to_str().unwrap(),
        ])
        .env("PERFPORT_FLIGHT_DIR", &dir)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("serve_gemm must run");
    assert!(
        !out.status.success(),
        "an injected panic must kill the run:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("flight recorder dumped"),
        "dump notice missing from stderr:\n{stderr}"
    );

    // Exactly one dump, named after the producing pid.
    let dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("flight dir must be readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected one flight dump, got {dumps:?}");

    let text = std::fs::read_to_string(&dumps[0]).expect("dump must be readable");
    let doc = json::parse(&text).expect("flight dump must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("perfport-flight/1")
    );
    assert!(doc.get("pid").and_then(Json::as_f64).is_some());

    // The trigger is the injected panic, and it is the LAST event in
    // the merged stream: the file always ends with the failure.
    let trigger = doc.get("trigger").expect("trigger object");
    assert_eq!(
        trigger.get("kind").and_then(Json::as_str),
        Some("task_panic")
    );
    assert!(trigger
        .get("detail")
        .and_then(Json::as_str)
        .expect("trigger detail")
        .contains("injected panic at request 7"));
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .expect("events array");
    assert!(!events.is_empty());
    let last = events.last().unwrap();
    assert_eq!(last.get("kind").and_then(Json::as_str), Some("task_panic"));
    assert!(last
        .get("detail")
        .and_then(Json::as_str)
        .unwrap()
        .contains("injected panic at request 7"));

    // Every event is fully structured, and the pre-trigger stream is
    // merged in timestamp order.
    let mut prev = 0u64;
    for (i, ev) in events.iter().enumerate() {
        for field in ["worker", "kind", "detail"] {
            assert!(
                ev.get(field).and_then(Json::as_str).is_some(),
                "event {i} missing '{field}': {text}"
            );
        }
        let ts = ev.get("ts_ns").and_then(Json::as_f64).expect("ts_ns") as u64;
        if i + 1 < events.len() {
            assert!(ts >= prev, "pre-trigger events out of ts order at {i}");
            prev = ts;
        }
    }

    // The stream leading up to the failure carries real runtime
    // lifecycle events, not just the trigger.
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    for expected in ["queue_drain_begin", "region_begin"] {
        assert!(
            kinds.contains(&expected),
            "kind '{expected}' missing from {kinds:?}"
        );
    }

    // The run died before the snapshot stage: no BENCH json.
    assert!(
        !out_json.exists(),
        "snapshot must not be written after a panic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean run leaves no black box behind: the recorder stays invisible
/// in steady state.
#[test]
fn clean_runs_write_no_flight_dump() {
    let dir = flight_dir("clean");
    let out_json = dir.join("BENCH_serve.json");
    let out = Command::new(env!("CARGO_BIN_EXE_serve_gemm"))
        .args([
            "--quick",
            "--requests",
            "16",
            "--jobs",
            "2",
            "--out",
            out_json.to_str().unwrap(),
        ])
        .env("PERFPORT_FLIGHT_DIR", &dir)
        .current_dir(std::env::temp_dir())
        .output()
        .expect("serve_gemm must run");
    assert!(out.status.success());
    let dumps = std::fs::read_dir(&dir)
        .expect("flight dir must be readable")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .count();
    assert_eq!(dumps, 0, "no failure, no dump");
    let _ = std::fs::remove_dir_all(&dir);
}
