//! End-to-end checks of the `bench_diff` binary: exit codes are the
//! contract CI depends on, so they are pinned here against synthetic
//! snapshot fixtures rather than left to the library tests alone.

use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{
  "schema": "perfport-bench-gemm/2",
  "quick": false,
  "points": [
    {"n": 1024, "precision": "FP64",
     "gflops": {"c-openmp": 5.0, "kokkos": 4.8, "vendor": 9.0},
     "spread": {"c-openmp": 0.01, "kokkos": 0.01, "vendor": 0.01}}
  ]
}"#;

/// The synthetic regression fixture: vendor drops exactly 10% while the
/// naive variants hold steady.
const REGRESSED: &str = r#"{
  "schema": "perfport-bench-gemm/2",
  "quick": true,
  "points": [
    {"n": 1024, "precision": "FP64",
     "gflops": {"c-openmp": 5.0, "kokkos": 4.8, "vendor": 8.1},
     "spread": {"c-openmp": 0.01, "kokkos": 0.01, "vendor": 0.01}}
  ]
}"#;

fn fixture(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfport-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff must run");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn ten_percent_regression_exits_one() {
    let base = fixture("base.json", BASELINE);
    let cand = fixture("regressed.json", REGRESSED);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(
        code, 1,
        "a 10% vendor regression must fail the gate:\n{text}"
    );
    assert!(text.contains("REGRESSED"), "verdict missing:\n{text}");
    assert!(text.contains("1 regressed"), "summary missing:\n{text}");
}

#[test]
fn warn_only_reports_but_passes() {
    let base = fixture("base2.json", BASELINE);
    let cand = fixture("regressed2.json", REGRESSED);
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--warn-only",
    ]);
    assert_eq!(code, 0, "warn-only must not fail:\n{text}");
    assert!(text.contains("REGRESSED"));
    assert!(text.contains("warn-only"));
}

#[test]
fn identical_snapshots_pass() {
    let base = fixture("same-a.json", BASELINE);
    let cand = fixture("same-b.json", BASELINE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 0, "identical snapshots must pass:\n{text}");
    assert!(text.contains("0 regressed"));
}

/// A fixture with an embedded manifest pinning the producing ISA.
fn with_isa(isa: &str) -> String {
    BASELINE.replacen(
        "\"quick\": false,",
        &format!("\"quick\": false,\n  \"manifest\": {{\"schema\": \"perfport-manifest/1\", \"simd_isa\": \"{isa}\"}},"),
        1,
    )
}

#[test]
fn cross_isa_comparison_warns_on_stderr_but_passes() {
    let base = fixture("isa-a.json", &with_isa("avx512"));
    let cand = fixture("isa-b.json", &with_isa("portable"));
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args([base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("bench_diff must run");
    assert_eq!(out.status.code(), Some(0), "warning must not gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("different tuned-kernel ISAs") && stderr.contains("avx512"),
        "cross-ISA warning must go to stderr:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("different tuned-kernel ISAs"),
        "the warning must not pollute stdout:\n{stdout}"
    );
}

#[test]
fn require_same_isa_refuses_cross_isa_with_exit_three() {
    let base = fixture("gate-a.json", &with_isa("avx512"));
    let cand = fixture("gate-b.json", &with_isa("portable"));
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--require-same-isa",
    ]);
    assert_eq!(code, 3, "cross-ISA under the gate is exit 3:\n{text}");
    assert!(text.contains("refusing to compare across ISAs"));
}

#[test]
fn require_same_isa_passes_matching_snapshots() {
    let base = fixture("gate-c.json", &with_isa("neon"));
    let cand = fixture("gate-d.json", &with_isa("neon"));
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--require-same-isa",
    ]);
    assert_eq!(code, 0, "same-ISA snapshots must pass the gate:\n{text}");
}

#[test]
fn require_same_isa_refuses_snapshots_without_provenance() {
    // BASELINE carries no manifest: under the gate that is unprovable
    // like-for-likeness, not a silent pass.
    let base = fixture("gate-e.json", BASELINE);
    let cand = fixture("gate-f.json", &with_isa("avx2"));
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--require-same-isa",
    ]);
    assert_eq!(
        code, 3,
        "missing provenance under the gate is exit 3:\n{text}"
    );
    assert!(text.contains("no simd_isa manifest"));
}

/// A serving snapshot as `serve_gemm` emits it (latency percentiles
/// mapped to reciprocal metrics by the parser).
const SERVE_BASE: &str = r#"{
  "schema": "perfport-bench-serve/1",
  "quick": true,
  "seed": 42,
  "manifest": {"schema": "perfport-manifest/1", "simd_isa": "avx2"},
  "workload": {"requests": 64, "batches": 2, "batch_max": 32, "rate_req_per_s": 2000},
  "latency_ms": {"p50": 0.050, "p95": 0.120, "p99": 0.200, "mean": 0.060, "max": 0.250},
  "sustained_gflops": 3.5,
  "req_per_s": 1900.0
}"#;

#[test]
fn serve_snapshot_self_compare_passes() {
    let base = fixture("serve-a.json", SERVE_BASE);
    let cand = fixture("serve-b.json", SERVE_BASE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 0, "identical serve snapshots must pass:\n{text}");
    assert!(text.contains("0 regressed"), "summary missing:\n{text}");
    assert!(
        text.contains("inv_p99_ms"),
        "latency metrics must appear in the report:\n{text}"
    );
}

#[test]
fn serve_tail_latency_regression_gates_and_warn_only_passes() {
    // p99 doubles: inv_p99_ms halves, well past the threshold.
    let worse = SERVE_BASE.replace("\"p99\": 0.200", "\"p99\": 0.400");
    let base = fixture("serve-c.json", SERVE_BASE);
    let cand = fixture("serve-d.json", &worse);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 1, "a doubled p99 must fail the gate:\n{text}");
    assert!(text.contains("REGRESSED"));
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--warn-only",
    ]);
    assert_eq!(code, 0, "warn-only must report without failing:\n{text}");
    assert!(text.contains("warn-only"));
}

#[test]
fn serve_and_gemm_snapshots_do_not_cross_compare_silently() {
    // Disjoint workload kinds are refused up front, with both schemas
    // named — not reported as a hollow no-overlap error after the fact.
    let base = fixture("serve-e.json", SERVE_BASE);
    let cand = fixture("gemm-e.json", BASELINE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(
        code, 2,
        "disjoint snapshots must not pass silently:\n{text}"
    );
    assert!(text.contains("snapshot kinds differ"), "{text}");
    assert!(
        text.contains("perfport-bench-serve/1") && text.contains("perfport-bench-gemm/2"),
        "the refusal must name both schemas:\n{text}"
    );
    assert!(
        text.contains("serving latency") && text.contains("host GEMM"),
        "the refusal must describe both kinds:\n{text}"
    );
}

/// A GPU-simulator snapshot as `gpu_gemm` emits it (trimmed to the keys
/// the parser reads; the extra per-point device blocks are ignored).
const GPU_BASE: &str = r#"{
  "schema": "perfport-bench-gpu/1",
  "quick": true,
  "manifest": {"schema": "perfport-manifest/1", "simd_isa": "avx2"},
  "devices": {"a100": "NVIDIA A100"},
  "headroom": {"a100": {"FP64": 4.0}},
  "points": [
    {"n": 64, "precision": "FP64",
     "gflops": {"cuda": 0.070, "tiled-nvidia": 0.050},
     "spread": {"cuda": 0.050, "tiled-nvidia": 0.030}}
  ]
}"#;

#[test]
fn gpu_snapshot_self_compare_passes() {
    let base = fixture("gpu-a.json", GPU_BASE);
    let cand = fixture("gpu-b.json", GPU_BASE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 0, "identical GPU snapshots must pass:\n{text}");
    assert!(text.contains("0 regressed"), "summary missing:\n{text}");
    assert!(
        text.contains("tiled-nvidia"),
        "GPU variants must appear in the report:\n{text}"
    );
}

#[test]
fn gpu_and_gemm_snapshots_are_refused_with_named_schemas() {
    let base = fixture("gpu-c.json", GPU_BASE);
    let cand = fixture("gemm-c.json", BASELINE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 2, "gpu-vs-gemm must be refused:\n{text}");
    assert!(text.contains("snapshot kinds differ"), "{text}");
    assert!(
        text.contains("GPU simulator") && text.contains("host GEMM"),
        "the refusal must describe both kinds:\n{text}"
    );
    // And the other disjoint pairing.
    let serve = fixture("serve-f.json", SERVE_BASE);
    let (code, text) = run(&[base.to_str().unwrap(), serve.to_str().unwrap()]);
    assert_eq!(code, 2, "gpu-vs-serve must be refused:\n{text}");
    assert!(text.contains("serving latency"), "{text}");
}

#[test]
fn spreadless_cells_gate_on_the_blanket_floor() {
    // A snapshot with no committed spreads: a 3% drop sits inside the
    // documented 5% blanket floor even with the configured floor at 0.
    let no_spread = GPU_BASE.replace(
        "\"spread\": {\"cuda\": 0.050, \"tiled-nvidia\": 0.030}",
        "\"spread\": {}",
    );
    let drooped = no_spread.replace("\"cuda\": 0.070", "\"cuda\": 0.068");
    let base = fixture("flat-a.json", &no_spread);
    let cand = fixture("flat-b.json", &drooped);
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--floor",
        "0",
    ]);
    assert_eq!(code, 0, "a 3% drop is inside the blanket floor:\n{text}");
    // A 10% drop is not.
    let worse = no_spread.replace("\"cuda\": 0.070", "\"cuda\": 0.063");
    let cand = fixture("flat-c.json", &worse);
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--floor",
        "0",
    ]);
    assert_eq!(code, 1, "a 10% drop must still gate:\n{text}");
    assert!(text.contains("REGRESSED"));
}

#[test]
fn bad_input_is_a_usage_error_not_a_pass() {
    let base = fixture("base3.json", BASELINE);
    let bogus = fixture("bogus.json", "{\"schema\": \"perfport-trace/1\"}");
    let (code, _) = run(&[base.to_str().unwrap(), bogus.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run(&[base.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run(&["--frobnicate"]);
    assert_eq!(code, 2);
}
