//! End-to-end checks of the `bench_diff` binary: exit codes are the
//! contract CI depends on, so they are pinned here against synthetic
//! snapshot fixtures rather than left to the library tests alone.

use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{
  "schema": "perfport-bench-gemm/2",
  "quick": false,
  "points": [
    {"n": 1024, "precision": "FP64",
     "gflops": {"c-openmp": 5.0, "kokkos": 4.8, "vendor": 9.0},
     "spread": {"c-openmp": 0.01, "kokkos": 0.01, "vendor": 0.01}}
  ]
}"#;

/// The synthetic regression fixture: vendor drops exactly 10% while the
/// naive variants hold steady.
const REGRESSED: &str = r#"{
  "schema": "perfport-bench-gemm/2",
  "quick": true,
  "points": [
    {"n": 1024, "precision": "FP64",
     "gflops": {"c-openmp": 5.0, "kokkos": 4.8, "vendor": 8.1},
     "spread": {"c-openmp": 0.01, "kokkos": 0.01, "vendor": 0.01}}
  ]
}"#;

fn fixture(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfport-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff must run");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn ten_percent_regression_exits_one() {
    let base = fixture("base.json", BASELINE);
    let cand = fixture("regressed.json", REGRESSED);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(
        code, 1,
        "a 10% vendor regression must fail the gate:\n{text}"
    );
    assert!(text.contains("REGRESSED"), "verdict missing:\n{text}");
    assert!(text.contains("1 regressed"), "summary missing:\n{text}");
}

#[test]
fn warn_only_reports_but_passes() {
    let base = fixture("base2.json", BASELINE);
    let cand = fixture("regressed2.json", REGRESSED);
    let (code, text) = run(&[
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--warn-only",
    ]);
    assert_eq!(code, 0, "warn-only must not fail:\n{text}");
    assert!(text.contains("REGRESSED"));
    assert!(text.contains("warn-only"));
}

#[test]
fn identical_snapshots_pass() {
    let base = fixture("same-a.json", BASELINE);
    let cand = fixture("same-b.json", BASELINE);
    let (code, text) = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert_eq!(code, 0, "identical snapshots must pass:\n{text}");
    assert!(text.contains("0 regressed"));
}

#[test]
fn bad_input_is_a_usage_error_not_a_pass() {
    let base = fixture("base3.json", BASELINE);
    let bogus = fixture("bogus.json", "{\"schema\": \"perfport-trace/1\"}");
    let (code, _) = run(&[base.to_str().unwrap(), bogus.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run(&[base.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run(&["--frobnicate"]);
    assert_eq!(code, 2);
}
