//! End-to-end checks of the `--shard`/`--jobs` figure-binary contract:
//! concatenated shard stdout is byte-identical to the single-shot run,
//! the job count never reaches stdout, malformed shard flags exit 2,
//! and binaries that are one unit of work reject the flags outright.

use std::process::Command;

fn run(exe: &str, args: &[&str]) -> (i32, Vec<u8>, String) {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{exe} must run: {e}"));
    (
        out.status.code().unwrap_or(-1),
        out.stdout,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const FIG7: &str = env!("CARGO_BIN_EXE_fig7");

#[test]
fn shard_stdout_concatenates_to_the_single_shot_bytes() {
    let (code, single, stderr) = run(FIG7, &["--quick", "--shard", "0/1"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(
        single.starts_with(b"figure,arch,model,precision,n,"),
        "sharded mode must emit the per-point CSV"
    );
    assert!(
        stderr.contains("shard 0/1"),
        "the shard identity goes to stderr: {stderr}"
    );

    let mut concatenated = Vec::new();
    for shard in ["0/2", "1/2"] {
        let (code, stdout, stderr) = run(FIG7, &["--quick", "--shard", shard]);
        assert_eq!(code, 0, "{stderr}");
        concatenated.extend_from_slice(&stdout);
    }
    assert_eq!(
        concatenated, single,
        "shards 0/2 + 1/2 must reproduce --shard 0/1 byte for byte"
    );
}

#[test]
fn jobs_change_wall_clock_not_bytes() {
    let (code, one, stderr) = run(FIG7, &["--quick", "--jobs", "1"]);
    assert_eq!(code, 0, "{stderr}");
    let (code, three, stderr) = run(FIG7, &["--quick", "--jobs", "3"]);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(one, three, "--jobs must never change the artifact");
    // --jobs alone selects the sharded CSV over the whole grid.
    assert!(one.starts_with(b"figure,arch,model,precision,n,"));
}

#[test]
fn classic_panel_output_is_untouched() {
    let (code, stdout, _) = run(FIG7, &["--quick"]);
    assert_eq!(code, 0);
    let text = String::from_utf8_lossy(&stdout);
    assert!(
        text.contains("== fig7a ==") && !text.starts_with("figure,"),
        "without sharding flags the binaries keep the panel tables"
    );
}

#[test]
fn malformed_shard_flags_exit_two() {
    for args in [
        &["--quick", "--shard"][..],
        &["--quick", "--shard", "2/2"],
        &["--quick", "--shard", "banana"],
        &["--quick", "--shard=1of2"],
        &["--quick", "--jobs", "0"],
        &["--quick", "--jobs"],
    ] {
        let (code, _, stderr) = run(FIG7, args);
        assert_eq!(code, 2, "{args:?} must be a usage error: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}

#[test]
fn single_unit_binaries_reject_shard_flags() {
    // These reports are one unit of work each; silently ignoring a
    // sharding request would double-count in a fan-out. Exit 2, like any
    // unknown flag.
    for exe in [
        env!("CARGO_BIN_EXE_roofline_report"),
        env!("CARGO_BIN_EXE_babelstream"),
    ] {
        for flag in [&["--shard", "0/2"][..], &["--jobs", "2"]] {
            let mut args = vec!["--quick"];
            args.extend_from_slice(flag);
            let (code, _, stderr) = run(exe, &args);
            assert_eq!(code, 2, "{exe} {flag:?} must be rejected: {stderr}");
            assert!(stderr.contains("unknown argument"), "{exe}: {stderr}");
        }
    }
}
