//! Run provenance manifests: the machine/toolchain evidence behind a
//! bench artifact.
//!
//! The paper goes out of its way (Tables I/II) to disclose the exact
//! compiler stack, flags, and hardware behind every number, because a
//! GFLOPS figure without that context is not reproducible evidence. This
//! module captures the same disclosure for *our* measured artifacts:
//! every `BENCH_gemm.json` snapshot, roofline report, and trace carries
//! the git revision, rustc, CPU model, detected cache hierarchy (and
//! whether it was detected or defaulted), worker count, and hardware-
//! counter availability of the run that produced it.

use perfport_pool::CacheInfo;
use std::fmt::Write as _;
use std::process::Command;

/// Schema identifier stamped on every manifest object.
pub const MANIFEST_SCHEMA: &str = "perfport-manifest/1";

/// Provenance of one bench run. Field order is fixed so emitted JSON is
/// diff-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Short git revision of the working tree, `+dirty` when it differs
    /// from HEAD; `"unknown"` outside a repository.
    pub git_sha: String,
    /// `rustc --version` one-liner, `"unknown"` if rustc is not on PATH.
    pub rustc: String,
    /// CPU model string from `/proc/cpuinfo`, `"unknown"` elsewhere.
    pub cpu_model: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// ISA (`std::env::consts::ARCH`).
    pub arch: String,
    /// SIMD instruction set the tuned GEMM microkernel dispatched to for
    /// this process (`perfport_gemm::simd::active`): `"avx512"`,
    /// `"avx2"`, `"neon"`, or `"portable"`. Reflects any `PERFPORT_SIMD`
    /// override in effect.
    pub simd_isa: String,
    /// A valid `PERFPORT_SIMD` override the dispatcher had to decline
    /// because the host cannot execute it (unknown values abort the
    /// process instead). `None` when the override was honoured or absent.
    pub simd_rejected: Option<String>,
    /// Scheduler discipline the process ran with
    /// (`perfport_pool::sched::active`): `"barrier"` or `"graph"`.
    /// Reflects any `--sched` / `PERFPORT_SCHED` override in effect.
    pub sched: String,
    /// Worker-team size of the run.
    pub threads: usize,
    /// Study-grid shard this run executed (`"i/n"`), `None` for
    /// unsharded runs.
    pub shard: Option<String>,
    /// Job count of the sharded study runner, `None` for unsharded runs.
    pub jobs: Option<usize>,
    /// Vendor-baseline framing of a figure run's efficiency rows
    /// (`"measured"` or `"modelled"`), `None` for runs that render no
    /// efficiencies (snapshot and report binaries).
    pub baseline: Option<String>,
    /// Detected cache hierarchy (carries its own provenance in
    /// [`CacheInfo::source`]).
    pub cache: CacheInfo,
    /// Hardware-counter availability: `"available"` or
    /// `"unavailable (reason)"`, from the `perfport-obs` probe.
    pub counters: String,
    /// Telemetry build mode of the binary that produced the run:
    /// `"on"` (always-on sharded metrics + flight recorder) or `"stub"`
    /// (compile-time no-op build used by the overhead gate).
    pub telemetry: String,
    /// Whether hardware profiling was actually enabled for the run
    /// (requested via `--profile` *and* available).
    pub profiling: bool,
}

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

fn git_sha() -> String {
    let Some(sha) = command_line("git", &["rev-parse", "--short=12", "HEAD"]) else {
        return "unknown".to_string();
    };
    let dirty = Command::new("git")
        .args(["diff", "--quiet", "HEAD"])
        .status()
        .map(|s| !s.success())
        .unwrap_or(false);
    if dirty {
        format!("{sha}+dirty")
    } else {
        sha
    }
}

fn cpu_model() -> String {
    // x86 writes "model name", many arm64 kernels only "CPU part"; take
    // whichever human-readable field appears first.
    let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".to_string();
    };
    for key in ["model name", "Model", "cpu model", "Hardware"] {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(key) {
                if let Some((_, v)) = rest.split_once(':') {
                    let v = v.trim();
                    if !v.is_empty() {
                        return v.to_string();
                    }
                }
            }
        }
    }
    "unknown".to_string()
}

impl Manifest {
    /// Collects the build host's provenance for a run with `threads`
    /// workers. Never fails: anything undiscoverable reads `"unknown"`.
    pub fn collect(threads: usize) -> Manifest {
        Manifest {
            git_sha: git_sha(),
            rustc: command_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".to_string()),
            cpu_model: cpu_model(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            simd_isa: perfport_gemm::simd::active().name().to_string(),
            simd_rejected: perfport_gemm::simd::rejected_override().map(|i| i.name().to_string()),
            sched: perfport_pool::sched::active().name().to_string(),
            threads,
            shard: None,
            jobs: None,
            baseline: None,
            cache: CacheInfo::host(),
            counters: perfport_obs::probe().manifest_str(),
            telemetry: perfport_telemetry::build_mode().to_string(),
            profiling: perfport_obs::enabled(),
        }
    }

    /// Stamps the sharded study runner's identity onto the manifest.
    pub fn with_shard(mut self, shard: &str, jobs: usize) -> Manifest {
        self.shard = Some(shard.to_string());
        self.jobs = Some(jobs);
        self
    }

    /// Renders the manifest as one JSON object, indented by `indent`
    /// spaces per line (no trailing newline).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let esc = perfport_trace::json::escape;
        let mut out = String::new();
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{pad}  \"schema\": \"{MANIFEST_SCHEMA}\",");
        let _ = writeln!(out, "{pad}  \"git_sha\": \"{}\",", esc(&self.git_sha));
        let _ = writeln!(out, "{pad}  \"rustc\": \"{}\",", esc(&self.rustc));
        let _ = writeln!(out, "{pad}  \"cpu_model\": \"{}\",", esc(&self.cpu_model));
        let _ = writeln!(
            out,
            "{pad}  \"os\": \"{}\", \"arch\": \"{}\", \"threads\": {},",
            esc(&self.os),
            esc(&self.arch),
            self.threads
        );
        let _ = writeln!(out, "{pad}  \"simd_isa\": \"{}\",", esc(&self.simd_isa));
        let rejected = match &self.simd_rejected {
            Some(isa) => format!("\"{}\"", esc(isa)),
            None => "null".to_string(),
        };
        let _ = writeln!(out, "{pad}  \"simd_rejected\": {rejected},");
        let _ = writeln!(out, "{pad}  \"sched\": \"{}\",", esc(&self.sched));
        let shard = match &self.shard {
            Some(s) => format!("\"{}\"", esc(s)),
            None => "null".to_string(),
        };
        let jobs = match self.jobs {
            Some(j) => j.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(out, "{pad}  \"shard\": {shard}, \"jobs\": {jobs},");
        let baseline = match &self.baseline {
            Some(b) => format!("\"{}\"", esc(b)),
            None => "null".to_string(),
        };
        let _ = writeln!(out, "{pad}  \"baseline\": {baseline},");
        let _ = writeln!(
            out,
            "{pad}  \"cache\": {{\"l1d_bytes\": {}, \"l2_bytes\": {}, \"l3_bytes\": {}, \"source\": \"{}\"}},",
            self.cache.l1d_bytes, self.cache.l2_bytes, self.cache.l3_bytes, self.cache.source
        );
        let _ = writeln!(out, "{pad}  \"counters\": \"{}\",", esc(&self.counters));
        let _ = writeln!(out, "{pad}  \"telemetry\": \"{}\",", esc(&self.telemetry));
        let _ = writeln!(out, "{pad}  \"profiling\": {}", self.profiling);
        let _ = write!(out, "{pad}}}");
        out
    }

    /// The manifest as trace-event arguments, so `--trace` artifacts
    /// carry the same provenance (emitted as one instant event).
    pub fn trace_args(&self) -> Vec<(String, perfport_trace::Value)> {
        use perfport_trace::Value;
        let mut args = vec![
            ("schema".to_string(), Value::from(MANIFEST_SCHEMA)),
            ("git_sha".to_string(), Value::Str(self.git_sha.clone())),
            ("rustc".to_string(), Value::Str(self.rustc.clone())),
            ("cpu_model".to_string(), Value::Str(self.cpu_model.clone())),
            ("os".to_string(), Value::Str(self.os.clone())),
            ("arch".to_string(), Value::Str(self.arch.clone())),
            ("simd_isa".to_string(), Value::Str(self.simd_isa.clone())),
            ("sched".to_string(), Value::Str(self.sched.clone())),
            ("threads".to_string(), Value::from(self.threads)),
            ("l1d_bytes".to_string(), Value::from(self.cache.l1d_bytes)),
            ("l2_bytes".to_string(), Value::from(self.cache.l2_bytes)),
            ("l3_bytes".to_string(), Value::from(self.cache.l3_bytes)),
            (
                "cache_source".to_string(),
                Value::Str(self.cache.source.to_string()),
            ),
            ("counters".to_string(), Value::Str(self.counters.clone())),
            ("telemetry".to_string(), Value::Str(self.telemetry.clone())),
            ("profiling".to_string(), Value::from(self.profiling)),
        ];
        if let Some(isa) = &self.simd_rejected {
            args.push(("simd_rejected".to_string(), Value::Str(isa.clone())));
        }
        if let Some(shard) = &self.shard {
            args.push(("shard".to_string(), Value::Str(shard.clone())));
        }
        if let Some(jobs) = self.jobs {
            args.push(("jobs".to_string(), Value::from(jobs)));
        }
        if let Some(baseline) = &self.baseline {
            args.push(("baseline".to_string(), Value::Str(baseline.clone())));
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_never_fails_and_fields_are_nonempty() {
        let m = Manifest::collect(7);
        assert_eq!(m.threads, 7);
        assert!(!m.git_sha.is_empty());
        assert!(!m.rustc.is_empty());
        assert!(!m.cpu_model.is_empty());
        assert!(!m.os.is_empty() && !m.arch.is_empty());
        assert!(m.counters == "available" || m.counters.starts_with("unavailable"));
    }

    #[test]
    fn json_is_parseable_and_carries_every_field() {
        let m = Manifest {
            git_sha: "abc123".to_string(),
            rustc: "rustc 1.75.0".to_string(),
            cpu_model: "Imaginary CPU \"X\"".to_string(),
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            simd_isa: "avx2".to_string(),
            simd_rejected: None,
            sched: "graph".to_string(),
            threads: 16,
            shard: None,
            jobs: None,
            baseline: None,
            cache: CacheInfo::DEFAULT,
            counters: "unavailable (perf_event_paranoid=3)".to_string(),
            telemetry: "on".to_string(),
            profiling: false,
        };
        let text = m.to_json(2);
        let doc = perfport_trace::json::parse(&text).expect("manifest must be valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(MANIFEST_SCHEMA));
        assert_eq!(doc.get("git_sha").unwrap().as_str(), Some("abc123"));
        assert_eq!(doc.get("simd_isa").unwrap().as_str(), Some("avx2"));
        assert_eq!(doc.get("sched").unwrap().as_str(), Some("graph"));
        // Unsharded runs stamp explicit nulls, keeping the schema stable.
        use perfport_trace::json::Json;
        assert!(matches!(doc.get("shard"), Some(Json::Null)));
        assert!(matches!(doc.get("jobs"), Some(Json::Null)));
        assert!(matches!(doc.get("baseline"), Some(Json::Null)));
        assert!(matches!(doc.get("simd_rejected"), Some(Json::Null)));
        assert_eq!(
            doc.get("cpu_model").unwrap().as_str(),
            Some("Imaginary CPU \"X\"")
        );
        assert_eq!(doc.get("threads").unwrap().as_f64(), Some(16.0));
        assert_eq!(
            doc.get("cache").unwrap().get("source").unwrap().as_str(),
            Some("defaults")
        );
        assert!(doc
            .get("counters")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("unavailable"));
        assert_eq!(doc.get("telemetry").unwrap().as_str(), Some("on"));
        assert_eq!(doc.get("profiling").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn sharded_runs_stamp_their_identity() {
        let m = Manifest::collect(2).with_shard("1/4", 3);
        assert_eq!(m.shard.as_deref(), Some("1/4"));
        assert_eq!(m.jobs, Some(3));
        let doc = perfport_trace::json::parse(&m.to_json(0)).expect("valid JSON");
        assert_eq!(doc.get("shard").unwrap().as_str(), Some("1/4"));
        assert_eq!(doc.get("jobs").unwrap().as_f64(), Some(3.0));
        let args = m.trace_args();
        let keys: Vec<&str> = args.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"shard") && keys.contains(&"jobs"));
        // Unsharded manifests keep the trace event lean: no shard keys.
        let plain = Manifest::collect(2);
        let keys: Vec<String> = plain.trace_args().into_iter().map(|(k, _)| k).collect();
        assert!(!keys.contains(&"shard".to_string()));
    }

    #[test]
    fn figure_runs_stamp_their_baseline() {
        let mut m = Manifest::collect(2);
        m.baseline = Some("measured".to_string());
        let doc = perfport_trace::json::parse(&m.to_json(0)).expect("valid JSON");
        assert_eq!(doc.get("baseline").unwrap().as_str(), Some("measured"));
        let keys: Vec<String> = m.trace_args().into_iter().map(|(k, _)| k).collect();
        assert!(keys.contains(&"baseline".to_string()));
        // Snapshot binaries render no efficiencies: no baseline key in
        // their trace events.
        let plain = Manifest::collect(2);
        let keys: Vec<String> = plain.trace_args().into_iter().map(|(k, _)| k).collect();
        assert!(!keys.contains(&"baseline".to_string()));
    }

    #[test]
    fn trace_args_mirror_the_json_fields() {
        let m = Manifest::collect(2);
        let args = m.trace_args();
        let keys: Vec<&str> = args.iter().map(|(k, _)| k.as_str()).collect();
        for key in [
            "git_sha",
            "rustc",
            "cpu_model",
            "counters",
            "telemetry",
            "threads",
            "simd_isa",
            "sched",
        ] {
            assert!(keys.contains(&key), "missing {key}");
        }
    }

    #[test]
    fn sched_names_the_active_scheduler() {
        let m = Manifest::collect(1);
        assert_eq!(
            perfport_pool::SchedMode::from_name(&m.sched),
            Some(perfport_pool::sched::active()),
            "manifest sched {:?} must name the active mode",
            m.sched
        );
    }

    #[test]
    fn simd_isa_round_trips_through_json_and_names_a_real_isa() {
        // The collected value must be a name the dispatcher itself
        // understands, and must survive the JSON round trip verbatim.
        let m = Manifest::collect(1);
        let named = perfport_gemm::Isa::from_name(&m.simd_isa);
        assert!(named.is_some(), "unknown simd_isa {:?}", m.simd_isa);
        let doc = perfport_trace::json::parse(&m.to_json(0)).expect("valid JSON");
        assert_eq!(
            doc.get("simd_isa").unwrap().as_str(),
            Some(m.simd_isa.as_str())
        );
        assert_eq!(named, Some(perfport_gemm::simd::active()));
    }
}
