//! Extension A4: single-node thread-scaling curves for every CPU model
//! on both CPU architectures (the "scalability" dimension the paper's
//! introduction motivates).

use perfport_bench::HarnessArgs;
use perfport_core::{run_scaling, ScalingStudy};
use perfport_machines::Precision;
use perfport_models::{Arch, ProgModel};

fn main() {
    let args = HarnessArgs::from_env();
    args.start_profiling();
    let trace = args.start_trace();
    let n = if args.quick { 1024 } else { 4096 };
    for arch in [Arch::Epyc7A53, Arch::AmpereAltra] {
        println!("== thread scaling on {arch} (FP64, n={n}) ==");
        let models = ProgModel::candidates(arch);
        let results: Vec<_> = models
            .iter()
            .map(|&m| {
                (
                    m,
                    run_scaling(&ScalingStudy::pow2(arch, m, Precision::Double, n))
                        .expect("CPU models support FP64"),
                )
            })
            .collect();

        print!("{:>8}", "threads");
        for (m, _) in &results {
            print!("  {:>16}", m.name());
        }
        println!();
        let counts = results[0]
            .1
            .points
            .iter()
            .map(|p| p.threads)
            .collect::<Vec<_>>();
        for &t in &counts {
            print!("{t:>8}");
            for (_, r) in &results {
                let p = r.points.iter().find(|p| p.threads == t).unwrap();
                print!("  {:>16.1}", p.gflops);
            }
            println!();
        }
        print!("{:>8}", "eff");
        for (_, r) in &results {
            let last = r.points.last().unwrap().threads;
            print!("  {:>15.0}%", r.parallel_efficiency(last).unwrap() * 100.0);
        }
        println!("\n");
        if args.csv {
            println!("-- {arch} csv --");
            println!("threads,model,gflops");
            for (m, r) in &results {
                for p in &r.points {
                    println!("{},{},{:.2}", p.threads, m.name(), p.gflops);
                }
            }
            println!();
        }
    }
    println!(
        "The streaming GEMM saturates shared cache/memory bandwidth well before the\n\
         core count, so full-node parallel efficiency sits far below 100% for every\n\
         model — and lower still for Numba on Crusher, which cannot pin threads."
    );
    if let Some(trace) = trace {
        trace.finish();
    }
}
