//! Prometheus-text exposition of a bench snapshot's `telemetry` block.
//!
//! The bench binaries embed their always-on runtime telemetry (sharded
//! counters, gauges, log₂ streaming histograms) in `BENCH_gemm.json` /
//! `BENCH_serve.json`. This tool re-renders that block in Prometheus
//! text exposition format — the lingua franca of scrape-based
//! monitoring — so a run's metrics can be pushed to a gateway, diffed
//! with `promtool`, or eyeballed without a JSON pretty-printer:
//!
//! ```text
//! cargo run -p perfport-bench --bin telemetry_report -- BENCH_serve.json
//! ```
//!
//! Counters and gauges become single series; each histogram expands to
//! cumulative `_bucket{le="…"}` series (bucket upper bounds) plus exact
//! `_sum`/`_count`. All names are sanitized and prefixed `perfport_`.
//!
//! Exit codes: 0 on success, 1 when the snapshot carries no usable
//! telemetry block (pre-telemetry schema, or a `stub`-built producer),
//! 2 on usage errors.

use perfport_bench::diff::parse_snapshot;

const USAGE: &str = "usage: telemetry_report <BENCH_gemm.json | BENCH_serve.json>";

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with('-') => paths.push(a),
            other => fail_usage(&format!("unknown argument '{other}'")),
        }
    }
    let [path] = paths.as_slice() else {
        fail_usage("expected exactly one snapshot path");
    };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("cannot read {path}: {e}")));
    let snap = parse_snapshot(&text).unwrap_or_else(|e| fail_usage(&format!("{path}: {e}")));
    let Some(telemetry) = snap.telemetry else {
        eprintln!(
            "error: {path} ({}) carries no telemetry block — produced by a \
             pre-telemetry schema or a stub-built binary",
            snap.schema
        );
        std::process::exit(1);
    };
    print!("{}", telemetry.prometheus());
}
