//! Regenerates Table III: per-architecture performance efficiencies and
//! the Φ_M portability metric for FP64 and FP32, plus the Pennycook PP
//! (harmonic) extension row (experiment A3).

use perfport_core::{efficiency_table, render_table3};
use perfport_machines::Precision;

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    let trace = args.start_trace();
    let cfg = args.config();
    let reports = vec![
        efficiency_table(Precision::Double, &cfg),
        efficiency_table(Precision::Single, &cfg),
    ];
    println!("{}", render_table3(&reports));
    if let Some(trace) = trace {
        trace.finish();
    }
}
