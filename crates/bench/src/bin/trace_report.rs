//! Summarizes a Chrome trace written by `--trace`: hierarchical span
//! statistics (count / total / mean / min / max) plus counter stats.
//!
//! ```text
//! cargo run -p perfport-bench --bin fig7 -- --quick --trace /tmp/fig7.trace
//! cargo run -p perfport-bench --bin trace_report -- /tmp/fig7.trace
//! ```
//!
//! Accepts any Chrome `trace_event` file (object or bare-array form),
//! not only ones this harness produced; unknown phases are skipped.

use perfport_trace::{export, summary};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                eprintln!("usage: trace_report <trace.json> [more traces...]");
                return;
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_report <trace.json> [more traces...]");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &paths {
        if paths.len() > 1 {
            println!("=== {path} ===");
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match export::import_chrome(&text) {
            Ok(events) => print!("{}", summary::render(&events)),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
