//! Regenerates Fig. 4: Crusher CPU (AMD EPYC 7A53) multithreaded GEMM,
//! 64 threads across 4 NUMA regions, FP64 and FP32.
//!
//! `--shard i/n` / `--jobs N` switch to the sharded per-point study
//! runner (see `perfport_core::shard`): shard outputs concatenate
//! byte-identically to the single-shot CSV.

fn main() {
    let (args, study) = perfport_bench::parse_study_args();
    perfport_bench::print_study(&["fig4a", "fig4b"], &args, &study);
}
