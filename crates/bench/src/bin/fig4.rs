//! Regenerates Fig. 4: Crusher CPU (AMD EPYC 7A53) multithreaded GEMM,
//! 64 threads across 4 NUMA regions, FP64 and FP32.

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    perfport_bench::print_panels(&["fig4a", "fig4b"], &args);
}
