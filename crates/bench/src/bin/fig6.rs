//! Regenerates Fig. 6: Crusher GPU (AMD MI250X) GEMM with 32×32 thread
//! blocks, FP64 / FP32 / Julia FP16-input.
//!
//! Each panel is followed by a per-size efficiency block dividing every
//! curve by the vendor reference times the measured simulator headroom
//! (`gpu_gemm`, committed in `BENCH_gpu.json`); `--baseline modelled`
//! falls back to the paper's naive-vs-naive framing, labeled as such in
//! the block header and the `# baseline:` CSV comment.
//!
//! `--shard i/n` / `--jobs N` switch to the sharded per-point study
//! runner (see `perfport_core::shard`): shard outputs concatenate
//! byte-identically to the single-shot CSV (raw throughput — the
//! baseline never touches it).

fn main() {
    let (args, study) = perfport_bench::parse_study_args();
    perfport_bench::print_study(&["fig6a", "fig6b", "fig6c"], &args, &study);
}
