//! Regenerates Fig. 6: Crusher GPU (AMD MI250X) GEMM with 32×32 thread
//! blocks, FP64 / FP32 / Julia FP16-input.
//!
//! `--shard i/n` / `--jobs N` switch to the sharded per-point study
//! runner (see `perfport_core::shard`): shard outputs concatenate
//! byte-identically to the single-shot CSV.

fn main() {
    let (args, study) = perfport_bench::parse_study_args();
    perfport_bench::print_study(&["fig6a", "fig6b", "fig6c"], &args, &study);
}
