//! Regenerates Fig. 6: Crusher GPU (AMD MI250X) GEMM with 32×32 thread
//! blocks, FP64 / FP32 / Julia FP16-input.

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    perfport_bench::print_panels(&["fig6a", "fig6b", "fig6c"], &args);
}
