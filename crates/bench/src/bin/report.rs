//! Regenerates the paper-vs-reproduction anchor comparison (the
//! machine-checkable core of EXPERIMENTS.md) from live runs.

use perfport_core::{render_report, reproduction_report};

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    let trace = args.start_trace();
    let anchors = reproduction_report(&args.config());
    print!("{}", render_report(&anchors));
    if let Some(trace) = trace {
        trace.finish();
    }
    if anchors.iter().any(|a| !a.matches()) {
        std::process::exit(1);
    }
}
