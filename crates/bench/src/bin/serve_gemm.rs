//! Open-loop batched-GEMM serving benchmark: the latency story the
//! single-kernel sweeps cannot tell.
//!
//! The figure binaries measure one large GEMM at a time; a production
//! system serves a *stream* of many small problems, where tail latency
//! under load — not peak throughput — is the headline metric. This
//! harness drives the `perfport_gemm::batch` API with a seeded synthetic
//! open-loop arrival process: inter-arrival gaps, problem shapes, and
//! precisions are drawn from independent per-purpose streams
//! (`perfport_core::noise::stream`, the same per-entity idiom the study
//! runner's repetition noise uses), so the request stream for a given
//! `--seed` is bit-reproducible. Requests are served in arrival-order
//! batches through a [`WorkQueue`] (`enqueue_batch` + `drain`), and
//! per-request latency is measured on a virtual timeline: a batch starts
//! at `max(last arrival in batch, server free)`, completes after its
//! measured service time, and every request in it experiences
//! `completion − arrival`.
//!
//! The run reports p50/p95/p99/mean/max latency and sustained GFLOPS,
//! and writes `BENCH_serve.json` (schema `perfport-bench-serve/2`,
//! provenance-stamped with the `perfport-manifest/1` manifest) that
//! `bench_diff` parses and gates alongside the kernel snapshots. The
//! snapshot's `telemetry` block carries the always-on runtime metrics
//! recorded during the measured phase: the end-to-end `serve/latency_ns`
//! streaming histogram plus the per-shape-bucket `batch/service_ns/*`
//! histograms, so tail percentiles stream in O(1) memory alongside the
//! exact nearest-rank reference printed above (a unit test pins the two
//! within one log₂ bucket of each other).
//!
//! Two correctness modes:
//!
//! * `--verify` re-runs every batch's problems through the per-problem
//!   serial reference and byte-compares the outputs — the batch ≡ serial
//!   bitwise contract, end to end.
//! * `--dry-run` skips matrix materialisation and execution entirely,
//!   modelling service time deterministically (integer-nanosecond
//!   timeline, seeded noise), and prints a byte-stable request stream
//!   and latency summary: identical across repeated runs and any
//!   `--jobs`/`--threads`, which the golden CLI test enforces.
//!
//! One failure mode: `--inject-panic <req_id>` submits a deliberately
//! panicking task into the work queue alongside the batch containing
//! that request (barrier scheduler only). The panic poisons the queue,
//! the flight recorder dumps `flight-<pid>.json`, and the process dies
//! non-zero — the post-mortem path CI exercises end to end.

use perfport_bench::{HarnessArgs, Manifest};
use perfport_core::noise;
use perfport_gemm::{batch, Layout, Matrix};
use perfport_pool::{SchedMode, ThreadPool, WorkQueue};
use rand::Rng;
use std::fmt::Write as _;
use std::time::Instant;

const USAGE: &str =
    "usage: serve_gemm [--quick] [--csv] [--threads <n>] [--trace <path>] [--profile] \
     [--sched barrier|graph] [--seed <u64>] [--requests <n>] [--rate <req/s>] [--batch <max>] \
     [--jobs <n>] [--dry-run] [--verify] [--inject-panic <req_id>] [--out <path>]";

/// Modelled server throughput for `--dry-run` service times (GFLOP/s).
/// Deliberately round and machine-independent: dry-run output must be
/// byte-stable everywhere.
const DRY_RUN_GFLOPS: f64 = 4.0;

/// Shape menu for the synthetic stream: small problems, the regime where
/// batching (not single-kernel throughput) decides efficiency.
const SIZES: [usize; 8] = [4, 8, 12, 16, 24, 32, 48, 64];

/// Extra options on top of the shared harness set.
struct ServeArgs {
    seed: u64,
    requests: Option<usize>,
    rate: f64,
    batch_max: usize,
    jobs: Option<usize>,
    dry_run: bool,
    verify: bool,
    /// Request id whose batch gets a deliberately panicking queue task
    /// riding along — the flight-recorder post-mortem drill.
    inject_panic: Option<usize>,
    out: String,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            seed: 42,
            requests: None,
            rate: 2000.0,
            batch_max: 32,
            jobs: None,
            dry_run: false,
            verify: false,
            inject_panic: None,
            out: "BENCH_serve.json".to_string(),
        }
    }
}

impl ServeArgs {
    fn consume(
        &mut self,
        flag: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        let mut take =
            |name: &str| next().ok_or_else(|| format!("{name} requires a value argument"));
        match flag {
            "--dry-run" => self.dry_run = true,
            "--verify" => self.verify = true,
            "--seed" => self.seed = parse_u64("--seed", &take("--seed")?)?,
            "--requests" => self.requests = Some(parse_count("--requests", &take("--requests")?)?),
            "--rate" => self.rate = parse_rate(&take("--rate")?)?,
            "--batch" => self.batch_max = parse_count("--batch", &take("--batch")?)?,
            "--jobs" => self.jobs = Some(parse_count("--jobs", &take("--jobs")?)?),
            "--inject-panic" => {
                self.inject_panic =
                    Some(parse_u64("--inject-panic", &take("--inject-panic")?)? as usize)
            }
            "--out" => self.out = take("--out")?,
            other => {
                if let Some(v) = other.strip_prefix("--seed=") {
                    self.seed = parse_u64("--seed", v)?;
                } else if let Some(v) = other.strip_prefix("--requests=") {
                    self.requests = Some(parse_count("--requests", v)?);
                } else if let Some(v) = other.strip_prefix("--rate=") {
                    self.rate = parse_rate(v)?;
                } else if let Some(v) = other.strip_prefix("--batch=") {
                    self.batch_max = parse_count("--batch", v)?;
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    self.jobs = Some(parse_count("--jobs", v)?);
                } else if let Some(v) = other.strip_prefix("--inject-panic=") {
                    self.inject_panic = Some(parse_u64("--inject-panic", v)? as usize);
                } else if let Some(v) = other.strip_prefix("--out=") {
                    self.out = v.to_string();
                } else {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

fn parse_u64(flag: &str, s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("invalid {flag} value '{s}'"))
}

fn parse_count(flag: &str, s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("invalid {flag} value '{s}'")),
    }
}

fn parse_rate(s: &str) -> Result<f64, String> {
    match s.parse::<f64>() {
        Ok(r) if r.is_finite() && r > 0.0 => Ok(r),
        _ => Err(format!("invalid --rate value '{s}'")),
    }
}

/// One synthetic request: arrival timestamp plus the problem identity
/// (the operands themselves are materialised lazily, and never in
/// dry-run mode).
#[derive(Debug, Clone)]
struct Request {
    id: usize,
    arrival_ns: u64,
    precision: batch::Precision,
    m: usize,
    n: usize,
    k: usize,
}

impl Request {
    fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Generates the deterministic open-loop request stream: arrivals from
/// an exponential (Poisson-process) gap stream, shapes and precisions
/// from an independent stream, each labelled per purpose so the draws
/// never interleave.
fn generate_stream(seed: u64, requests: usize, rate: f64) -> Vec<Request> {
    let mut arrivals = noise::stream(seed, "serve/arrival");
    let mut shapes = noise::stream(seed, "serve/shape");
    let mean_gap_ns = 1e9 / rate;
    let mut t_ns: u64 = 0;
    (0..requests)
        .map(|id| {
            let u: f64 = arrivals.gen();
            let gap = (-(1.0 - u).ln() * mean_gap_ns).round() as u64;
            t_ns += gap;
            let m = SIZES[shapes.gen_range(0..SIZES.len())];
            let n = SIZES[shapes.gen_range(0..SIZES.len())];
            let k = SIZES[shapes.gen_range(0..SIZES.len())];
            let p: f64 = shapes.gen();
            let precision = if p < 0.25 {
                batch::Precision::F64
            } else if p < 0.75 {
                batch::Precision::F32
            } else {
                batch::Precision::F16
            };
            Request {
                id,
                arrival_ns: t_ns,
                precision,
                m,
                n,
                k,
            }
        })
        .collect()
}

/// Materialises a request's operands from per-request seeds, so `--verify`
/// (or anyone else) can regenerate the exact same problem independently.
fn materialize(seed: u64, req: &Request) -> batch::Problem {
    let golden = 0x9E37_79B9_7F4A_7C15u64;
    let sa = seed ^ (2 * req.id as u64 + 1).wrapping_mul(golden);
    let sb = seed ^ (2 * req.id as u64 + 2).wrapping_mul(golden);
    let l = Layout::RowMajor;
    match req.precision {
        batch::Precision::F64 => batch::Problem::new_f64(
            Matrix::random(req.m, req.k, l, sa),
            Matrix::random(req.k, req.n, l, sb),
        ),
        batch::Precision::F32 => batch::Problem::new_f32(
            Matrix::random(req.m, req.k, l, sa),
            Matrix::random(req.k, req.n, l, sb),
        ),
        batch::Precision::F16 => batch::Problem::new_f16(
            Matrix::random(req.m, req.k, l, sa),
            Matrix::random(req.k, req.n, l, sb),
        ),
    }
}

/// Nearest-rank quantile over sorted latencies.
fn quantile(sorted_ns: &[u64], q: f64) -> u64 {
    assert!(!sorted_ns.is_empty());
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The per-request CSV block shared by the dry-run and measured paths.
fn print_csv(stream: &[Request], summary: &ServeSummary) {
    println!("-- csv --");
    println!("id,arrival_ns,latency_ns");
    for (r, lat) in stream.iter().zip(&summary.latencies_ns) {
        println!("{},{},{lat}", r.id, r.arrival_ns);
    }
}

struct ServeSummary {
    latencies_ns: Vec<u64>,
    batches: usize,
    total_flops: u64,
    /// `last completion − first arrival` on the (virtual) timeline.
    makespan_ns: u64,
}

impl ServeSummary {
    fn percentiles_ns(&self) -> (u64, u64, u64, u64, u64) {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let mean =
            (self.latencies_ns.iter().sum::<u64>() as f64 / sorted.len() as f64).round() as u64;
        (
            quantile(&sorted, 0.50),
            quantile(&sorted, 0.95),
            quantile(&sorted, 0.99),
            mean,
            *sorted.last().expect("at least one request"),
        )
    }

    fn sustained_gflops(&self) -> f64 {
        // flops per nanosecond is numerically GFLOP/s.
        self.total_flops as f64 / self.makespan_ns.max(1) as f64
    }

    fn req_per_s(&self) -> f64 {
        self.latencies_ns.len() as f64 * 1e9 / self.makespan_ns.max(1) as f64
    }

    fn print(&self, label: &str) {
        let (p50, p95, p99, mean, max) = self.percentiles_ns();
        println!(
            "batches {}, {label} makespan {:.3} ms",
            self.batches,
            ms(self.makespan_ns)
        );
        println!(
            "latency ms: p50 {:.6} p95 {:.6} p99 {:.6} mean {:.6} max {:.6}",
            ms(p50),
            ms(p95),
            ms(p99),
            ms(mean),
            ms(max)
        );
        println!(
            "sustained {:.3} GFLOPS, {:.1} req/s ({label} timeline)",
            self.sustained_gflops(),
            self.req_per_s()
        );
    }
}

/// The virtual-timeline bookkeeping shared by the dry-run (modelled
/// service times) and measured serving paths — one accumulator so the
/// two latency summaries cannot drift apart. Each completed batch
/// starts when the server is free and its last request has arrived,
/// takes `service_ns`, and every request in it experiences
/// `completion − arrival`; per-request latencies also stream into the
/// `serve/latency_ns` telemetry histogram.
struct Timeline {
    latencies_ns: Vec<u64>,
    server_free_ns: u64,
    last_completion_ns: u64,
    batches: usize,
}

impl Timeline {
    fn new(capacity: usize) -> Timeline {
        Timeline {
            latencies_ns: Vec::with_capacity(capacity),
            server_free_ns: 0,
            last_completion_ns: 0,
            batches: 0,
        }
    }

    fn complete_batch(&mut self, reqs: &[Request], service_ns: u64) {
        let last_arrival = reqs.last().expect("non-empty batch").arrival_ns;
        let start = last_arrival.max(self.server_free_ns);
        let completion = start + service_ns;
        self.server_free_ns = completion;
        self.last_completion_ns = completion;
        self.batches += 1;
        for r in reqs {
            let latency = completion - r.arrival_ns;
            perfport_telemetry::observe("serve/latency_ns", latency);
            self.latencies_ns.push(latency);
        }
    }

    fn into_summary(self, stream: &[Request]) -> ServeSummary {
        ServeSummary {
            makespan_ns: self.last_completion_ns - stream[0].arrival_ns,
            latencies_ns: self.latencies_ns,
            batches: self.batches,
            total_flops: stream.iter().map(Request::flops).sum(),
        }
    }
}

fn dry_run(stream: &[Request], seed: u64, batch_max: usize) -> ServeSummary {
    let mut service = noise::stream(seed, "serve/service");
    let mut timeline = Timeline::new(stream.len());
    for reqs in stream.chunks(batch_max) {
        let flops: u64 = reqs.iter().map(Request::flops).sum();
        // Modelled service: batch flops at the nominal rate, perturbed by
        // the seeded noise stream — deterministic integer nanoseconds.
        let u: f64 = service.gen();
        let factor = 0.9 + 0.2 * u;
        let service_ns = (flops as f64 / DRY_RUN_GFLOPS * factor).round() as u64;
        timeline.complete_batch(reqs, service_ns);
    }
    timeline.into_summary(stream)
}

fn serve(
    stream: &[Request],
    seed: u64,
    batch_max: usize,
    pool: &ThreadPool,
    verify: bool,
    sched: SchedMode,
    inject_panic: Option<usize>,
) -> ServeSummary {
    let queue = WorkQueue::new();
    let mut timeline = Timeline::new(stream.len());
    let mut verified = 0usize;
    for reqs in stream.chunks(batch_max) {
        let problems: Vec<batch::Problem> = reqs.iter().map(|r| materialize(seed, r)).collect();
        // Barrier mode serves through the WorkQueue (enqueue + drain, one
        // barrier per batch); graph mode runs the batch as independent
        // task-graph tasks. Both execute the canonical bucketed order,
        // so the outputs are bitwise identical either way.
        let (outputs, service_ns, serial) = match sched {
            SchedMode::Barrier => {
                let t0 = Instant::now();
                let ticket = batch::enqueue_batch(&queue, problems);
                if let Some(target) = inject_panic {
                    if reqs.iter().any(|r| r.id == target) {
                        queue.submit(move || {
                            panic!("injected panic at request {target}");
                        });
                    }
                }
                queue.drain(pool);
                let service_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let serial = verify.then(|| batch::gemm_batch_serial(ticket.problems()));
                (ticket.collect(), service_ns, serial)
            }
            SchedMode::Graph => {
                let t0 = Instant::now();
                let outputs = batch::gemm_batch_with(pool, &problems, sched);
                let service_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let serial = verify.then(|| batch::gemm_batch_serial(&problems));
                (outputs, service_ns, serial)
            }
        };
        if let Some(serial) = serial {
            for (i, (b, s)) in outputs.iter().zip(&serial).enumerate() {
                assert_eq!(
                    b.to_le_bytes(),
                    s.to_le_bytes(),
                    "batch≡serial contract violated at request {}",
                    reqs[i].id
                );
            }
            verified += outputs.len();
        } else {
            std::hint::black_box(&outputs);
        }
        timeline.complete_batch(reqs, service_ns);
    }
    if verify {
        println!("batch≡serial contract: OK ({verified} requests)");
    }
    timeline.into_summary(stream)
}

fn json_snapshot(
    summary: &ServeSummary,
    manifest: &Manifest,
    serve: &ServeArgs,
    stream: &[Request],
    epoch: &perfport_bench::TelemetryEpoch,
    quick: bool,
) -> String {
    let (p50, p95, p99, mean, max) = summary.percentiles_ns();
    let count = |p: batch::Precision| stream.iter().filter(|r| r.precision == p).count();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"perfport-bench-serve/2\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"seed\": {},", serve.seed);
    let _ = writeln!(out, "  \"manifest\":");
    let _ = writeln!(out, "{},", manifest.to_json(2));
    let _ = writeln!(
        out,
        "  \"workload\": {{\"requests\": {}, \"batches\": {}, \"batch_max\": {}, \"rate_req_per_s\": {}, \"precisions\": {{\"f64\": {}, \"f32\": {}, \"f16\": {}}}}},",
        stream.len(),
        summary.batches,
        serve.batch_max,
        serve.rate,
        count(batch::Precision::F64),
        count(batch::Precision::F32),
        count(batch::Precision::F16),
    );
    let _ = writeln!(
        out,
        "  \"latency_ms\": {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"mean\": {:.6}, \"max\": {:.6}}},",
        ms(p50),
        ms(p95),
        ms(p99),
        ms(mean),
        ms(max)
    );
    let _ = writeln!(
        out,
        "  \"sustained_gflops\": {:.4},",
        summary.sustained_gflops()
    );
    let _ = writeln!(
        out,
        "  \"sched\": {},",
        perfport_bench::sched_totals_json_since(epoch)
    );
    let _ = writeln!(out, "  \"telemetry\":");
    let _ = writeln!(
        out,
        "{},",
        perfport_bench::telemetry_json_since(epoch, "  ")
    );
    let _ = writeln!(out, "  \"req_per_s\": {:.2}", summary.req_per_s());
    out.push_str("}\n");
    out
}

fn main() {
    let mut serve_args = ServeArgs::default();
    let args = match HarnessArgs::try_parse_with_values(std::env::args().skip(1), |flag, next| {
        serve_args.consume(flag, next)
    }) {
        Ok(out) if out.help => {
            println!("{USAGE}");
            return;
        }
        Ok(out) => out,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if serve_args.dry_run && serve_args.verify {
        eprintln!("error: --verify needs real execution; it cannot be combined with --dry-run");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if serve_args.dry_run && serve_args.inject_panic.is_some() {
        eprintln!(
            "error: --inject-panic needs real execution; it cannot be combined with --dry-run"
        );
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let requests = serve_args
        .requests
        .unwrap_or(if args.quick { 64 } else { 512 });
    let stream = generate_stream(serve_args.seed, requests, serve_args.rate);

    if serve_args.dry_run {
        // Byte-stable output contract: nothing below depends on the
        // machine, thread count, or wall clock.
        println!("== serve_gemm dry-run (seed {}) ==", serve_args.seed);
        println!(
            "requests {}, batch max {}, rate {} req/s",
            stream.len(),
            serve_args.batch_max,
            serve_args.rate
        );
        for r in &stream {
            println!(
                "req {:04} arrival_ns={} {} {}x{}x{} flops={}",
                r.id,
                r.arrival_ns,
                r.precision,
                r.m,
                r.n,
                r.k,
                r.flops()
            );
        }
        let summary = dry_run(&stream, serve_args.seed, serve_args.batch_max);
        summary.print("virtual");
        if args.csv {
            print_csv(&stream, &summary);
        }
        return;
    }

    let sched = args.apply_sched();
    if serve_args.inject_panic.is_some() && sched != SchedMode::Barrier {
        eprintln!("error: --inject-panic rides the work queue; it requires the barrier scheduler");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if let Some(target) = serve_args.inject_panic {
        if target >= stream.len() {
            eprintln!(
                "error: --inject-panic {target} is out of range (stream has {} requests)",
                stream.len()
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    args.start_profiling();
    let jobs = serve_args.jobs.unwrap_or_else(|| args.thread_count());
    let trace = args.start_trace_with(|m| m.jobs = Some(jobs));
    let pool = ThreadPool::new(jobs);
    let mut manifest = Manifest::collect(jobs);
    manifest.jobs = Some(jobs);
    println!(
        "== serve_gemm (seed {}, {} requests, rate {} req/s, batch max {}, {jobs} jobs, {sched} scheduler) ==",
        serve_args.seed,
        stream.len(),
        serve_args.rate,
        serve_args.batch_max
    );
    // Telemetry epoch: the snapshot's `sched` and `telemetry` blocks are
    // deltas from here, so pool construction stays out of the evidence.
    let epoch = perfport_bench::telemetry_epoch();
    let summary = serve(
        &stream,
        serve_args.seed,
        serve_args.batch_max,
        &pool,
        serve_args.verify,
        sched,
        serve_args.inject_panic,
    );
    summary.print("measured");
    if args.csv {
        print_csv(&stream, &summary);
    }
    let json = json_snapshot(
        &summary,
        &manifest,
        &serve_args,
        &stream,
        &epoch,
        args.quick,
    );
    match std::fs::write(&serve_args.out, &json) {
        Ok(()) => println!("wrote {}", serve_args.out),
        Err(e) => {
            eprintln!("failed to write {}: {e}", serve_args.out);
            std::process::exit(1);
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_telemetry::histogram::Histogram;

    /// Satellite contract behind the snapshot's `telemetry` block: the
    /// streaming log₂ histogram must agree with the exact nearest-rank
    /// reference within one bucket — for every headline quantile,
    /// `exact ≤ estimate < 2·exact` (the estimate is the containing
    /// bucket's upper bound, so tails are never understated).
    #[test]
    fn histogram_quantiles_bracket_the_exact_summary() {
        let stream = generate_stream(42, 512, 2000.0);
        let summary = dry_run(&stream, 42, 32);
        let hist = Histogram::new();
        for &lat in &summary.latencies_ns {
            hist.observe(lat);
        }
        let snap = hist.snapshot();
        let mut sorted = summary.latencies_ns.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let exact = quantile(&sorted, q);
            let est = snap.quantile(q);
            assert!(
                exact <= est,
                "q={q}: histogram estimate {est} understates exact {exact}"
            );
            assert!(
                est < exact.saturating_mul(2),
                "q={q}: histogram estimate {est} is more than one log2 bucket above exact {exact}"
            );
        }
    }

    /// Both serving paths share [`Timeline`]; pin its queueing algebra
    /// on a hand-checked two-batch schedule.
    #[test]
    fn timeline_queueing_algebra_by_hand() {
        let req = |id: usize, arrival_ns: u64| Request {
            id,
            arrival_ns,
            precision: batch::Precision::F64,
            m: 4,
            n: 4,
            k: 4,
        };
        let stream = [req(0, 100), req(1, 200), req(2, 250)];
        let mut t = Timeline::new(stream.len());
        // Batch 1 (reqs 0, 1): starts at its last arrival (200), runs
        // 1000 ns, completes at 1200.
        t.complete_batch(&stream[..2], 1000);
        // Batch 2 (req 2): arrived at 250 but the server is busy until
        // 1200; completes at 1700.
        t.complete_batch(&stream[2..], 500);
        let s = t.into_summary(&stream);
        assert_eq!(s.latencies_ns, vec![1100, 1000, 1450]);
        assert_eq!(s.batches, 2);
        assert_eq!(s.makespan_ns, 1600);
    }
}
