//! Regenerates Fig. 7: Wombat GPU (NVIDIA A100) GEMM with 32×32 thread
//! blocks, FP64 / FP32 / FP16 (Julia and Numba).

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    perfport_bench::print_panels(&["fig7a", "fig7b", "fig7c"], &args);
}
