//! Regenerates Fig. 7: Wombat GPU (NVIDIA A100) GEMM with 32×32 thread
//! blocks, FP64 / FP32 / FP16 (Julia and Numba).
//!
//! `--shard i/n` / `--jobs N` switch to the sharded per-point study
//! runner (see `perfport_core::shard`): shard outputs concatenate
//! byte-identically to the single-shot CSV.

fn main() {
    let (args, study) = perfport_bench::parse_study_args();
    perfport_bench::print_study(&["fig7a", "fig7b", "fig7c"], &args, &study);
}
