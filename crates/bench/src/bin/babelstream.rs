//! Extension A6: a BabelStream-style bandwidth table across the study's
//! programming models and machines — the workload family the wider
//! portability literature (and the paper's related work) standardises on.

use perfport_core::{estimate_stream_bandwidth, run_stream_kernel, StreamKernel};
use perfport_models::{Arch, ProgModel};
use perfport_pool::ThreadPool;

fn main() {
    // Functional pass on the host first (every kernel verified).
    let pool = ThreadPool::new(std::thread::available_parallelism().map_or(2, |p| p.get().min(8)));
    for kernel in StreamKernel::ALL {
        let _ = run_stream_kernel(&pool, kernel, 1 << 20);
    }
    println!("all five kernels verified on the host pool (n = 2^20)\n");

    for arch in Arch::ALL {
        println!("== BabelStream-style sustained bandwidth on {arch} (GB/s, FP64) ==");
        let models = ProgModel::candidates(arch);
        print!("{:>8}", "kernel");
        for m in &models {
            print!("  {:>16}", m.name());
        }
        println!();
        for kernel in StreamKernel::ALL {
            print!("{:>8}", kernel.name());
            for &m in &models {
                match estimate_stream_bandwidth(arch, m, kernel) {
                    Ok(bw) => print!("  {bw:>16.0}"),
                    Err(_) => print!("  {:>16}", "-"),
                }
            }
            println!();
        }
        println!();
    }
    println!(
        "A pure stream hides most code-generation differences: models that trail\n\
         badly on GEMM (a compute/L1-bound kernel) sit much closer to the vendor\n\
         on bandwidth-bound kernels — except where NUMA placement still bites."
    );
}
