//! Extension A6: a BabelStream-style bandwidth table across the study's
//! programming models and machines — the workload family the wider
//! portability literature (and the paper's related work) standardises on.

use perfport_bench::HarnessArgs;
use perfport_core::{estimate_stream_bandwidth, run_stream_kernel, StreamKernel};
use perfport_models::{Arch, ProgModel};
use perfport_pool::ThreadPool;

fn main() {
    let args = HarnessArgs::from_env();
    args.start_profiling();
    let trace = args.start_trace();

    // Functional pass on the host first (every kernel verified). The
    // verification pool defaults to a modest size — a bandwidth kernel
    // gains nothing from oversubscription — unless --threads insists.
    let workers = args
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |p| p.get().min(8)));
    let pool = ThreadPool::new(workers);
    let n = if args.quick { 1 << 16 } else { 1 << 20 };
    for kernel in StreamKernel::ALL {
        let _ = run_stream_kernel(&pool, kernel, n);
    }
    println!("all five kernels verified on the host pool (n = {n}, {workers} workers)\n");

    for arch in Arch::ALL {
        println!("== BabelStream-style sustained bandwidth on {arch} (GB/s, FP64) ==");
        let models = ProgModel::candidates(arch);
        print!("{:>8}", "kernel");
        for m in &models {
            print!("  {:>16}", m.name());
        }
        println!();
        for kernel in StreamKernel::ALL {
            print!("{:>8}", kernel.name());
            for &m in &models {
                match estimate_stream_bandwidth(arch, m, kernel) {
                    Ok(bw) => print!("  {bw:>16.0}"),
                    Err(_) => print!("  {:>16}", "-"),
                }
            }
            println!();
        }
        if args.csv {
            println!("-- {arch} csv --");
            println!("kernel,model,gbs");
            for kernel in StreamKernel::ALL {
                for &m in &models {
                    if let Ok(bw) = estimate_stream_bandwidth(arch, m, kernel) {
                        println!("{},{},{bw:.1}", kernel.name(), m.name());
                    }
                }
            }
        }
        println!();
    }
    println!(
        "A pure stream hides most code-generation differences: models that trail\n\
         badly on GEMM (a compute/L1-bound kernel) sit much closer to the vendor\n\
         on bandwidth-bound kernels — except where NUMA placement still bites."
    );
    if let Some(trace) = trace {
        trace.finish();
    }
}
