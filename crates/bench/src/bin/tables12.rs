//! Regenerates Tables I and II: the experiment configurations — which
//! compiler/runtime stack, flags, affinity controls, and hardware each
//! (model, system) cell uses, as encoded in the machine and model
//! registries.

use perfport_bench::HarnessArgs;
use perfport_machines::Precision;
use perfport_models::{cpu_profile, gpu_profile, support, Arch, ProgModel};

fn main() {
    let args = HarnessArgs::from_env();
    args.start_profiling();
    let trace = args.start_trace();
    println!("Table I: CPU experiment specs");
    println!(
        "  {:<18} {:>22} {:>22}",
        "", "Wombat (Arm)", "Crusher (AMD)"
    );
    let altra = Arch::AmpereAltra.cpu_machine().unwrap();
    let epyc = Arch::Epyc7A53.cpu_machine().unwrap();
    println!("  {:<18} {:>22} {:>22}", "Model", altra.name, epyc.name);
    println!(
        "  {:<18} {:>22} {:>22}",
        "Cores / NUMA",
        format!("{}-core, {}-NUMA", altra.total_cores(), altra.numa_domains),
        format!("{}-core, {}-NUMA", epyc.total_cores(), epyc.numa_domains)
    );
    println!(
        "  {:<18} {:>22} {:>22}",
        "SIMD",
        format!("{}-bit NEON", altra.simd_bits),
        format!("{}-bit AVX2", epyc.simd_bits)
    );
    println!(
        "  {:<18} {:>22} {:>22}",
        "Mem BW (GB/s)",
        format!("{:.0}", altra.total_bw_gbs()),
        format!("{:.0}", epyc.total_bw_gbs())
    );
    println!();
    for model in [
        ProgModel::COpenMp,
        ProgModel::KokkosOpenMp,
        ProgModel::JuliaThreads,
        ProgModel::NumbaParallel,
    ] {
        let p = cpu_profile(model);
        println!(
            "  {:<18} pin={:<9} region-overhead x{:<4} jit-warmup {:>4.1}s",
            model.name(),
            p.pin_policy.to_string(),
            p.region_overhead_multiplier,
            p.jit_warmup_s
        );
    }

    println!();
    println!("Table II: GPU experiment specs");
    let a100 = Arch::A100.gpu_machine().unwrap();
    let mi = Arch::Mi250x.gpu_machine().unwrap();
    println!("  {:<18} {:>22} {:>22}", "Model", a100.name, mi.name);
    println!("  {:<18} {:>22} {:>22}", "SMs/CUs", a100.sms, mi.sms);
    println!(
        "  {:<18} {:>22} {:>22}",
        "FP64 peak (GF/s)",
        format!("{:.0}", a100.peak_fp64_gflops),
        format!("{:.0}", mi.peak_fp64_gflops)
    );
    println!(
        "  {:<18} {:>22} {:>22}",
        "HBM BW (GB/s)",
        format!("{:.0}", a100.mem_bw_gbs),
        format!("{:.0}", mi.mem_bw_gbs)
    );
    println!();
    for model in [
        ProgModel::Cuda,
        ProgModel::Hip,
        ProgModel::KokkosCuda,
        ProgModel::KokkosHip,
        ProgModel::JuliaCudaJl,
        ProgModel::JuliaAmdGpu,
        ProgModel::NumbaCuda,
    ] {
        let p = gpu_profile(model);
        println!(
            "  {:<18} launch-overhead x{:<5} jit-warmup {:>4.1}s",
            model.name(),
            p.launch_overhead_multiplier,
            p.jit_warmup_s
        );
    }

    println!();
    println!("Support matrix (FP64 / FP32 / FP16):");
    for arch in Arch::ALL {
        println!("  {arch}:");
        for model in ProgModel::candidates(arch) {
            let cells: Vec<String> = Precision::ALL
                .iter()
                .map(|&p| match support(model, arch, p) {
                    perfport_models::Support::Supported => "yes".to_string(),
                    perfport_models::Support::Partial(_) => "partial".to_string(),
                    perfport_models::Support::Unsupported(_) => "no".to_string(),
                })
                .collect();
            println!("    {:<18} {}", model.name(), cells.join(" / "));
        }
    }
    if args.csv {
        println!("-- support csv --");
        println!("arch,model,fp64,fp32,fp16");
        for arch in Arch::ALL {
            for model in ProgModel::candidates(arch) {
                let cells: Vec<&str> = Precision::ALL
                    .iter()
                    .map(|&p| match support(model, arch, p) {
                        perfport_models::Support::Supported => "yes",
                        perfport_models::Support::Partial(_) => "partial",
                        perfport_models::Support::Unsupported(_) => "no",
                    })
                    .collect();
                println!("{arch},{},{}", model.name(), cells.join(","));
            }
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}
