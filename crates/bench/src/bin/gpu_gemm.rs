//! Measured GPU bench: the gpusim GEMM kernels under host_gemm's
//! one-warm-up-then-reps protocol — the GPU-side counterpart of the
//! measured vendor-headroom evidence in `BENCH_gemm.json`.
//!
//! For each device class the run times the paper's naive kernels
//! (vendor geometry plus Julia's column-major mirror; the Kokkos and
//! Numba variants share their simulator counters with the vendor kernel
//! and are omitted), the tiled shared-memory kernel, and the
//! mixed-precision (FP16-in/FP32-accumulate) variant whose throughput is
//! modelled on the matrix units. Two numbers are recorded per variant:
//!
//! * **`gflops`** — genuine wall-clock throughput of the simulator
//!   executing the kernel (warm-up excluded, mean of reps, relative
//!   half-range spread). This is what `bench_diff` gates: it moves with
//!   the build host and carries real noise evidence.
//! * **`device_gflops`** — the steady-state device estimate: the
//!   kernel's measured counters (element bytes, divergence) and
//!   occupancy pushed through the machine model's derated compute/L1
//!   ceilings (`perfport_machines::steady_state_gflops`; the tensor
//!   variant uses the matrix-unit peak via `tensor_core_gflops`).
//!   Deterministic for a given simulator build.
//!
//! The ratio of the tiled (or tensor) estimate over the best naive
//! estimate per device and precision is the **measured GPU headroom**:
//! the committed constants in `perfport_models::vendor` that Figs 6–7
//! divide their GPU efficiency rows by. The snapshot (`BENCH_gpu.json`,
//! schema `perfport-bench-gpu/1`) embeds the same `perfport-manifest/1`
//! provenance, per-variant rep spreads, and telemetry block as the
//! CPU/serve snapshots.
//!
//! `--quick` restricts every precision to the smallest size (the CI
//! smoke configuration; its cells are a subset of the full sweep's).

use perfport_bench::{HarnessArgs, Manifest};
use perfport_gemm::{
    gpu_gemm_mixed, gpu_gemm_tiled_mixed, GpuVariant, Layout, Matrix, Scalar, TILE, TILE_SMEM_ELEMS,
};
use perfport_gpusim::{occupancy, Dim3, Gpu, LaunchStats};
use perfport_half::F16;
use perfport_machines::{
    steady_state_gflops, tensor_core_gflops, GpuKernelProfile, GpuMachine, Precision,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's GPU block shape (32×32 threads).
const NAIVE_BLOCK: Dim3 = Dim3::d2(32, 32);

/// One modelled device: which machine grounds the estimates and which
/// kernel variants run on its simulator class.
struct Target {
    machine: GpuMachine,
    /// Key used in the snapshot's `headroom`/`devices` maps and in
    /// `models::vendor` provenance.
    key: &'static str,
    naive: &'static [GpuVariant],
    tiled_name: &'static str,
    tensor_name: &'static str,
}

fn targets() -> [Target; 2] {
    [
        Target {
            machine: GpuMachine::a100(),
            key: "a100",
            naive: &[GpuVariant::Cuda, GpuVariant::JuliaCudaJl],
            tiled_name: "tiled-nvidia",
            tensor_name: "tensorcore-nvidia",
        },
        Target {
            machine: GpuMachine::mi250x_gcd(),
            key: "mi250x",
            naive: &[GpuVariant::Hip, GpuVariant::JuliaAmdGpu],
            tiled_name: "tiled-amd",
            tensor_name: "matrixcore-amd",
        },
    ]
}

/// One timed kernel: mean simulator throughput and rep noise.
struct Measured {
    gflops: f64,
    /// Relative half-range of the per-rep rates, `(max-min)/(2·mean)` —
    /// the committed noise evidence `bench_diff` thresholds on.
    spread: f64,
}

fn measure(reps: usize, mut run: impl FnMut() -> LaunchStats) -> (Measured, LaunchStats) {
    // Warm-up, excluded (the paper's protocol). The counters are
    // deterministic across reps, so the warm-up doubles as the capture.
    let stats = run();
    let flops = stats.flops as f64;
    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(run());
        rates.push(flops / t0.elapsed().as_secs_f64() / 1e9);
    }
    let mean = rates.iter().sum::<f64>() / reps as f64;
    let (min, max) = rates
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &r| {
            (lo.min(r), hi.max(r))
        });
    (
        Measured {
            gflops: mean,
            spread: if mean > 0.0 {
                (max - min) / (2.0 * mean)
            } else {
                0.0
            },
        },
        stats,
    )
}

fn profile_of(stats: &LaunchStats) -> GpuKernelProfile {
    GpuKernelProfile {
        flops: stats.flops as f64,
        l1_bytes: (stats.load_bytes + stats.store_bytes) as f64,
        dram_bytes: stats.dram_bytes() as f64,
    }
}

/// One kernel variant on one device class.
struct VariantRow {
    name: &'static str,
    device: &'static str,
    naive: bool,
    measured: Measured,
    /// Steady-state device estimate, GFLOP/s.
    device_gflops: f64,
    /// Occupancy fraction at the variant's block shape + smem footprint.
    occupancy: f64,
}

/// One (n, precision) grid point across both device classes.
struct SizePoint {
    n: usize,
    precision: &'static str,
    rows: Vec<VariantRow>,
    /// Per device key: tiled (or tensor) steady-state estimate over the
    /// best naive estimate — the measured headroom.
    headroom: Vec<(&'static str, f64)>,
}

impl SizePoint {
    fn best_naive(&self) -> &VariantRow {
        self.rows
            .iter()
            .filter(|r| r.naive)
            .max_by(|a, b| a.measured.gflops.total_cmp(&b.measured.gflops))
            .expect("at least one naive variant")
    }
}

/// Measures every variant at one size. `I`/`O` follow
/// `gpu_gemm_mixed`; `tensor` switches the tiled kernel's estimate to
/// the matrix-unit (tensor-core) rate and its tensor-named row.
fn measure_point<I: Scalar, O: Scalar>(
    reps: usize,
    n: usize,
    precision: Precision,
    tensor: bool,
) -> SizePoint {
    let mut rows = Vec::new();
    let mut headroom = Vec::new();
    for t in targets() {
        let class = t.machine.class;
        let gpu = Gpu::new(class);
        let a = Matrix::<I>::random(n, n, Layout::RowMajor, 3);
        let b = Matrix::<I>::random(n, n, Layout::RowMajor, 4);

        let naive_occ = occupancy(class, NAIVE_BLOCK.x * NAIVE_BLOCK.y, 0);
        let mut best_naive_est = 0.0f64;
        for &v in t.naive {
            let (m, stats) = measure(reps, || {
                gpu_gemm_mixed::<I, O>(&gpu, v, &a, &b, NAIVE_BLOCK)
                    .expect("naive launch")
                    .1
            });
            let est = steady_state_gflops(
                &t.machine,
                precision,
                &profile_of(&stats),
                naive_occ.fraction,
                stats.divergence_rate(),
            );
            best_naive_est = best_naive_est.max(est);
            rows.push(VariantRow {
                name: v.name(),
                device: t.key,
                naive: true,
                measured: m,
                device_gflops: est,
                occupancy: naive_occ.fraction,
            });
        }

        let smem_bytes = (TILE_SMEM_ELEMS * std::mem::size_of::<O>()) as u64;
        let tiled_occ = occupancy(class, (TILE * TILE) as u32, smem_bytes);
        let (m, stats) = measure(reps, || {
            gpu_gemm_tiled_mixed::<I, O>(&gpu, &a, &b)
                .expect("tiled launch")
                .1
        });
        let prof = profile_of(&stats);
        let div = stats.divergence_rate();
        let est = if tensor {
            tensor_core_gflops(&t.machine, &prof, tiled_occ.fraction, div)
        } else {
            steady_state_gflops(&t.machine, precision, &prof, tiled_occ.fraction, div)
        };
        rows.push(VariantRow {
            name: if tensor { t.tensor_name } else { t.tiled_name },
            device: t.key,
            naive: false,
            measured: m,
            device_gflops: est,
            occupancy: tiled_occ.fraction,
        });
        headroom.push((t.key, est / best_naive_est));
    }
    SizePoint {
        n,
        precision: if tensor { F16::NAME } else { O::NAME },
        rows,
        headroom,
    }
}

fn print_points(points: &[SizePoint], csv: bool) {
    println!(
        "  {:>6} {:>5} {:>18} {:>8} {:>12} {:>8} {:>12} {:>6}",
        "n", "prec", "variant", "device", "sim-gflops", "spread", "device-est", "occ"
    );
    for p in points {
        for r in &p.rows {
            println!(
                "  {:>6} {:>5} {:>18} {:>8} {:>12.4} {:>8.4} {:>12.1} {:>6.2}",
                p.n,
                p.precision,
                r.name,
                r.device,
                r.measured.gflops,
                r.measured.spread,
                r.device_gflops,
                r.occupancy
            );
        }
        for (key, h) in &p.headroom {
            println!(
                "  {:>6} {:>5}   headroom[{key}] = {h:.2}x",
                p.n, p.precision
            );
        }
    }
    if csv {
        println!("-- csv --");
        println!("n,precision,variant,device,sim_gflops,spread,device_gflops,occupancy");
        for p in points {
            for r in &p.rows {
                println!(
                    "{},{},{},{},{:.4},{:.4},{:.1},{:.4}",
                    p.n,
                    p.precision,
                    r.name,
                    r.device,
                    r.measured.gflops,
                    r.measured.spread,
                    r.device_gflops,
                    r.occupancy
                );
            }
        }
    }
}

/// Headroom per (device key, precision) from the largest measured size.
fn final_headroom(points: &[SizePoint]) -> Vec<(&'static str, Vec<(&'static str, f64)>)> {
    let mut out: Vec<(&'static str, Vec<(&'static str, f64)>)> =
        targets().iter().map(|t| (t.key, Vec::new())).collect();
    for prec in ["FP64", "FP32", "FP16"] {
        let Some(p) = points
            .iter()
            .filter(|p| p.precision == prec)
            .max_by_key(|p| p.n)
        else {
            continue;
        };
        for (key, h) in &p.headroom {
            let slot = out
                .iter_mut()
                .find(|(k, _)| k == key)
                .expect("known device key");
            slot.1.push((prec, *h));
        }
    }
    out
}

fn json_snapshot(
    points: &[SizePoint],
    manifest: &Manifest,
    epoch: &perfport_bench::TelemetryEpoch,
    reps: usize,
    quick: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"perfport-bench-gpu/1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"manifest\":");
    let _ = writeln!(out, "{},", manifest.to_json(2));
    let _ = writeln!(
        out,
        "  \"protocol\": {{\"reps\": {reps}, \"warmup_runs\": 1, \"metric\": \"sim_gflops\", \"spread\": \"rel_half_range\"}},"
    );
    let _ = writeln!(
        out,
        "  \"sched\": {},",
        perfport_bench::sched_totals_json_since(epoch)
    );
    let _ = writeln!(out, "  \"telemetry\":");
    let _ = writeln!(
        out,
        "{},",
        perfport_bench::telemetry_json_since(epoch, "  ")
    );
    out.push_str("  \"devices\": {");
    for (i, t) in targets().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", t.key, t.machine.name);
    }
    out.push_str("},\n");
    out.push_str("  \"headroom\": {");
    for (i, (key, precs)) in final_headroom(points).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{key}\": {{");
        for (j, (prec, h)) in precs.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{prec}\": {h:.4}");
        }
        out.push('}');
    }
    out.push_str("},\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"precision\": \"{}\",",
            p.n, p.precision
        );
        let fields = |f: &dyn Fn(&VariantRow) -> String| {
            let mut s = String::from("{");
            for (j, r) in p.rows.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", r.name, f(r));
            }
            s.push('}');
            s
        };
        let _ = writeln!(
            out,
            "     \"gflops\": {},",
            fields(&|r| format!("{:.4}", r.measured.gflops))
        );
        let _ = writeln!(
            out,
            "     \"spread\": {},",
            fields(&|r| format!("{:.4}", r.measured.spread))
        );
        let _ = writeln!(
            out,
            "     \"device_gflops\": {},",
            fields(&|r| format!("{:.1}", r.device_gflops))
        );
        let _ = writeln!(
            out,
            "     \"occupancy\": {},",
            fields(&|r| format!("{:.4}", r.occupancy))
        );
        out.push_str("     \"headroom\": {");
        for (j, (key, h)) in p.headroom.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": {h:.4}");
        }
        out.push_str("},\n");
        let _ = write!(out, "     \"best_naive\": \"{}\"}}", p.best_naive().name);
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = HarnessArgs::from_env();
    let sched = args.apply_sched();
    let trace = args.start_trace();
    let reps = if args.quick { 3 } else { 5 };
    let workers = args.thread_count();
    let manifest = Manifest::collect(workers);
    println!(
        "gpusim bench: {reps} reps after warm-up; naive block {}x{}, tile {TILE}; scheduler: {sched}\n",
        NAIVE_BLOCK.x, NAIVE_BLOCK.y
    );
    // Telemetry epoch: everything stamped into the snapshot is a delta
    // from here.
    let epoch = perfport_bench::telemetry_epoch();

    println!("== gpusim kernels under the bench protocol ==");
    let fp64_sizes: &[usize] = if args.quick { &[64] } else { &[64, 96, 128] };
    let mixed_sizes: &[usize] = if args.quick { &[64] } else { &[64, 128] };
    let mut points = Vec::new();
    for &n in fp64_sizes {
        points.push(measure_point::<f64, f64>(reps, n, Precision::Double, false));
    }
    for &n in mixed_sizes {
        points.push(measure_point::<f32, f32>(reps, n, Precision::Single, false));
    }
    for &n in mixed_sizes {
        points.push(measure_point::<F16, f32>(reps, n, Precision::Half, true));
    }
    print_points(&points, args.csv);

    println!(
        "\nmeasured GPU headroom (steady-state device estimates, largest size):\n\
         tiled (FP64/FP32) and matrix-unit (FP16) kernels over the best naive\n\
         kernel — the constants committed in crates/models/src/vendor.rs:"
    );
    for (key, precs) in final_headroom(&points) {
        print!("  {key:>8}");
        for (prec, h) in precs {
            print!("  {prec} {h:.2}x");
        }
        println!();
    }

    let json = json_snapshot(&points, &manifest, &epoch, reps, args.quick);
    let path = "BENCH_gpu.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}
