//! R1: roofline context for all four machines and the naive GEMM's
//! arithmetic intensity, plus the productivity measures for the paper's
//! kernel snippets (§V discussion).
//!
//! `--measured` adds a host section that places the real kernels on the
//! roofline from *measured* data: analytic FLOP counts (exact, from the
//! loop nest) divided by counter-derived DRAM traffic (LLC misses × line
//! size, read around the pool regions by `perfport-obs`). Cache blocking
//! is then visible as measured arithmetic intensity, not just asserted:
//! the tuned kernel's AI should sit well above the naive variants'.
//! Without usable counters (containers, `perf_event_paranoid`) the
//! section degrades to timing plus analytic AI and says so.

use perfport_bench::{HarnessArgs, Manifest};
use perfport_gemm::{
    gemm_arithmetic_intensity, gemm_flops, par_gemm, tuned, CpuVariant, Layout, Matrix,
};
use perfport_machines::{Precision, Roofline};
use perfport_metrics::productivity;
use perfport_models::Arch;
use perfport_obs::{self as obs};
use perfport_pool::Schedule;
use std::time::Instant;

const USAGE: &str =
    "usage: roofline_report [--measured] [--quick] [--csv] [--threads <n>] [--trace <path>] [--profile]";

fn main() {
    let mut measured = false;
    let parsed = HarnessArgs::try_parse_with(std::env::args().skip(1), |f| {
        if f == "--measured" {
            measured = true;
            true
        } else {
            false
        }
    });
    let args = match parsed {
        Ok(args) if args.help => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Ok(args) => args,
        Err(msg) => {
            // Sharding flags land here too: this report is one unit of
            // work, so `--shard`/`--jobs` are rejected, not ignored.
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    args.start_profiling();
    let trace = args.start_trace();

    println!("== R1: rooflines ==");
    println!(
        "  {:<22} {:>6} {:>14} {:>12} {:>12}",
        "machine", "prec", "peak GF/s", "BW GB/s", "ridge AI"
    );
    for arch in Arch::ALL {
        for p in [Precision::Double, Precision::Single] {
            let (name, roof) = roofline_for(arch, p);
            println!(
                "  {:<22} {:>6} {:>14.0} {:>12.0} {:>12.2}",
                name,
                p.label(),
                roof.peak_gflops,
                roof.bw_gbs,
                roof.ridge_ai()
            );
        }
    }

    println!();
    println!("  naive GEMM DRAM arithmetic intensity (32x32 GPU blocks):");
    for p in [Precision::Double, Precision::Single] {
        // flops per DRAM byte with block-level reuse: 2·bx·by·k /
        // ((bx + by)·k·bytes) = 32 / bytes for square 32x32 blocks.
        let ai = 32.0 / p.bytes() as f64;
        println!("    {}: {ai:.1} flops/byte", p.label());
    }
    println!("  => memory-bound on every GPU at FP64; the binding ceiling in");
    println!("     practice is L1/LSU traffic (two loads per FMA), see DESIGN.md.");

    println!();
    println!("== productivity of the Fig. 2 kernels ==");
    println!(
        "  {:<14} {:>8} {:>8} {:>22}",
        "model", "lines", "tokens", "parallel annotations"
    );
    for v in CpuVariant::ALL {
        let p = productivity(v.source_snippet());
        println!(
            "  {:<14} {:>8} {:>8} {:>22}",
            v.name(),
            p.lines,
            p.tokens,
            p.parallel_annotations
        );
    }

    if measured {
        measured_roofline(&args);
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}

/// One measured placement: mean rate plus the counter delta of the
/// timed reps.
fn measure(reps: usize, n: usize, run: &dyn Fn()) -> (f64, obs::Totals) {
    run(); // warm-up excluded, as everywhere in this harness
    let before = obs::totals();
    let t0 = Instant::now();
    for _ in 0..reps {
        run();
    }
    let per_rep = t0.elapsed().as_secs_f64() / reps as f64;
    let hw = obs::totals().delta(&before);
    (gemm_flops(n, n, n) as f64 / per_rep / 1e9, hw)
}

fn measured_roofline(args: &HarnessArgs) {
    let avail = obs::try_enable();
    let n = if args.quick { 512 } else { 1024 };
    let reps = if args.quick { 2 } else { 3 };
    let pool = args.make_pool();
    let manifest = Manifest::collect(pool.num_threads());
    let flops = gemm_flops(n, n, n);
    let ai_analytic = gemm_arithmetic_intensity(n, n, n, std::mem::size_of::<f64>());

    println!();
    println!(
        "== measured roofline placement (FP64, n={n}, {} workers, host) ==",
        pool.num_threads()
    );
    println!("  hardware counters: {}", manifest.counters);
    println!("  analytic AI floor (compulsory traffic only): {ai_analytic:.1} flops/byte");
    println!(
        "  {:<10} {:>10} {:>12} {:>12} {:>7}",
        "variant", "GFLOP/s", "analytic AI", "measured AI", "IPC"
    );

    let mut rows: Vec<(&'static str, f64, Option<f64>, Option<f64>)> = Vec::new();
    for &v in CpuVariant::ALL.iter() {
        let layout = v.layout();
        let a = Matrix::<f64>::random(n, n, layout, 3);
        let b = Matrix::<f64>::random(n, n, layout, 4);
        let (gflops, hw) = measure(reps, n, &|| {
            let mut c = Matrix::<f64>::zeros(n, n, layout);
            par_gemm(&pool, v, &a, &b, &mut c, Schedule::StaticBlock);
            std::hint::black_box(&c);
        });
        rows.push((v.name(), gflops, measured_ai(flops, reps, &hw), hw.ipc()));
    }
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 3);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 4);
    let params = tuned::TunedParams::host::<f64>();
    let (gflops, hw) = measure(reps, n, &|| {
        let mut c = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
        tuned::gemm(&pool, &a, &b, &mut c, &params);
        std::hint::black_box(&c);
    });
    rows.push(("tuned", gflops, measured_ai(flops, reps, &hw), hw.ipc()));

    let fmt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    };
    for (name, gflops, ai, ipc) in &rows {
        println!(
            "  {name:<10} {gflops:>10.3} {ai_analytic:>12.1} {:>12} {:>7}",
            fmt(*ai),
            fmt(*ipc)
        );
    }
    if avail.is_available() {
        println!(
            "  (measured AI = analytic flops / (LLC misses × 64B); blocking that\n   \
             keeps the working set in cache raises it above the compulsory floor)"
        );
    } else {
        println!("  (counters unavailable on this host — timing-only, measured AI omitted)");
    }
    if args.csv {
        println!("-- measured csv --");
        println!("variant,gflops,analytic_ai,measured_ai,ipc");
        for (name, gflops, ai, ipc) in &rows {
            println!(
                "{name},{gflops:.4},{ai_analytic:.2},{},{}",
                fmt(*ai),
                fmt(*ipc)
            );
        }
    }
}

/// Measured arithmetic intensity: exact FLOPs over counter-estimated
/// DRAM traffic. `None` when the run recorded no usable counts.
fn measured_ai(flops_per_run: u64, reps: usize, hw: &obs::Totals) -> Option<f64> {
    let bytes = hw.est_dram_bytes();
    (bytes > 0).then(|| (flops_per_run * reps as u64) as f64 / bytes as f64)
}

fn roofline_for(arch: Arch, p: Precision) -> (&'static str, Roofline) {
    if let Some(cpu) = arch.cpu_machine() {
        (
            cpu.name,
            Roofline {
                peak_gflops: cpu.peak_gflops(p),
                bw_gbs: cpu.total_bw_gbs(),
            },
        )
    } else {
        let gpu = arch.gpu_machine().unwrap();
        (
            gpu.name,
            Roofline {
                peak_gflops: gpu.peak_gflops(p),
                bw_gbs: gpu.mem_bw_gbs,
            },
        )
    }
}
