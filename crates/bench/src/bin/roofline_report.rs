//! R1: roofline context for all four machines and the naive GEMM's
//! arithmetic intensity, plus the productivity measures for the paper's
//! kernel snippets (§V discussion).

use perfport_gemm::CpuVariant;
use perfport_machines::{Precision, Roofline};
use perfport_metrics::productivity;
use perfport_models::Arch;

fn main() {
    println!("== R1: rooflines ==");
    println!(
        "  {:<22} {:>6} {:>14} {:>12} {:>12}",
        "machine", "prec", "peak GF/s", "BW GB/s", "ridge AI"
    );
    for arch in Arch::ALL {
        for p in [Precision::Double, Precision::Single] {
            let (name, roof) = roofline_for(arch, p);
            println!(
                "  {:<22} {:>6} {:>14.0} {:>12.0} {:>12.2}",
                name,
                p.label(),
                roof.peak_gflops,
                roof.bw_gbs,
                roof.ridge_ai()
            );
        }
    }

    println!();
    println!("  naive GEMM DRAM arithmetic intensity (32x32 GPU blocks):");
    for p in [Precision::Double, Precision::Single] {
        // flops per DRAM byte with block-level reuse: 2·bx·by·k /
        // ((bx + by)·k·bytes) = 32 / bytes for square 32x32 blocks.
        let ai = 32.0 / p.bytes() as f64;
        println!("    {}: {ai:.1} flops/byte", p.label());
    }
    println!("  => memory-bound on every GPU at FP64; the binding ceiling in");
    println!("     practice is L1/LSU traffic (two loads per FMA), see DESIGN.md.");

    println!();
    println!("== productivity of the Fig. 2 kernels ==");
    println!(
        "  {:<14} {:>8} {:>8} {:>22}",
        "model", "lines", "tokens", "parallel annotations"
    );
    for v in CpuVariant::ALL {
        let p = productivity(v.source_snippet());
        println!(
            "  {:<14} {:>8} {:>8} {:>22}",
            v.name(),
            p.lines,
            p.tokens,
            p.parallel_annotations
        );
    }
}

fn roofline_for(arch: Arch, p: Precision) -> (&'static str, Roofline) {
    if let Some(cpu) = arch.cpu_machine() {
        (
            cpu.name,
            Roofline {
                peak_gflops: cpu.peak_gflops(p),
                bw_gbs: cpu.total_bw_gbs(),
            },
        )
    } else {
        let gpu = arch.gpu_machine().unwrap();
        (
            gpu.name,
            Roofline {
                peak_gflops: gpu.peak_gflops(p),
                bw_gbs: gpu.mem_bw_gbs,
            },
        )
    }
}
