//! Regression sentinel: compares two bench snapshots (`BENCH_gemm.json`,
//! `BENCH_serve.json`, or `BENCH_gpu.json`) point-by-point with
//! noise-aware thresholds and exits non-zero when a cell regressed
//! beyond its tolerance. Both files must record the same workload kind;
//! comparing, say, a GPU snapshot against a host GEMM one is refused
//! with exit 2 and a message naming both schemas.
//!
//! The tolerance for each `(n, precision, variant)` cell is derived from
//! the rep spreads *committed in the snapshots themselves* (see
//! `perfport_bench::diff`), so a naturally noisy cell does not flap CI
//! while a rock-steady one stays tight. Typical use:
//!
//! ```text
//! cargo run -p perfport-bench --bin host_gemm -- --quick   # writes BENCH_gemm.json
//! cargo run -p perfport-bench --bin bench_diff -- baseline.json BENCH_gemm.json
//! ```
//!
//! `--warn-only` reports regressions but exits 0 — the mode CI uses on
//! shared runners, where machine noise makes a hard gate dishonest.
//!
//! Snapshots from different tuned-kernel ISAs always draw a stderr
//! warning (the delta includes the microkernel change, not just the code
//! under test); `--require-same-isa` upgrades that to a refusal with
//! exit code 3, distinct from regression (1) and usage (2), so a gating
//! CI job can refuse apples-to-oranges comparisons outright.

use perfport_bench::diff::{diff, parse_snapshot, DiffConfig, Snapshot, Verdict};

const USAGE: &str = "usage: bench_diff <baseline.json> <candidate.json> \
                     [--warn-only] [--require-same-isa] [--floor <rel>] [--spread-factor <x>]";

/// Exit code for `--require-same-isa` refusals: the snapshots are not
/// comparable, which is neither a regression (1) nor a usage error (2).
const EXIT_ISA_MISMATCH: i32 = 3;

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("cannot read {path}: {e}")));
    parse_snapshot(&text).unwrap_or_else(|e| fail_usage(&format!("{path}: {e}")))
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut warn_only = false;
    let mut require_same_isa = false;
    let mut cfg = DiffConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--warn-only" => warn_only = true,
            "--require-same-isa" => require_same_isa = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => cfg.floor = v,
                _ => fail_usage("--floor requires a non-negative number"),
            },
            "--spread-factor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => cfg.spread_factor = v,
                _ => fail_usage("--spread-factor requires a non-negative number"),
            },
            other if !other.starts_with('-') => paths.push(a),
            other => fail_usage(&format!("unknown argument '{other}'")),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        fail_usage("expected exactly two snapshot paths");
    };
    let base = load(base_path);
    let cand = load(cand_path);
    if base.kind != cand.kind {
        // Disjoint workload kinds can never share a cell; refuse up
        // front with the schemas named instead of a generic no-overlap
        // error after the fact.
        eprintln!(
            "error: snapshot kinds differ: {base_path} is a {} snapshot ('{}') \
             but {cand_path} is a {} snapshot ('{}'); these measure \
             incommensurable metrics and cannot be compared",
            base.kind.describe(),
            base.schema,
            cand.kind.describe(),
            cand.schema
        );
        std::process::exit(2);
    }
    let isa_of = |s: &Snapshot| s.simd_isa.clone().unwrap_or_else(|| "unknown".to_string());
    let sched_of = |s: &Snapshot| s.sched.clone().unwrap_or_else(|| "unknown".to_string());
    println!(
        "baseline:  {base_path} ({}, {} points, isa {}, sched {})",
        base.schema,
        base.points.len(),
        isa_of(&base),
        sched_of(&base)
    );
    println!(
        "candidate: {cand_path} ({}, {} points, isa {}, sched {})",
        cand.schema,
        cand.points.len(),
        isa_of(&cand),
        sched_of(&cand)
    );
    // Telemetry never gates: it is context for reading the deltas below
    // (e.g. barrier-wait blowups behind a latency regression).
    let telemetry_of = |s: &Snapshot| match &s.telemetry {
        Some(t) => format!(
            "{} counters, {} gauges, {} histograms",
            t.counters.len(),
            t.gauges.len(),
            t.histograms.len()
        ),
        None => "absent".to_string(),
    };
    println!(
        "telemetry: baseline {}; candidate {}",
        telemetry_of(&base),
        telemetry_of(&cand)
    );
    if let (Some(bs), Some(cs)) = (&base.sched, &cand.sched) {
        if bs != cs {
            // A scheduler A/B is a legitimate comparison (that is how the
            // graph scheduler is evaluated), so this never gates — but the
            // delta includes the scheduling change, so say so.
            eprintln!(
                "warning: snapshots were produced under different schedulers \
                 ({bs} vs {cs}); differences below include the scheduling change"
            );
        }
    }
    match (&base.simd_isa, &cand.simd_isa) {
        (Some(bi), Some(ci)) if bi != ci => {
            // Different dispatched microkernels are a legitimate A/B run
            // (e.g. PERFPORT_SIMD=portable), but never a like-for-like
            // regression gate — flag it loudly either way.
            eprintln!(
                "warning: snapshots were produced by different tuned-kernel ISAs \
                 ({bi} vs {ci}); differences below include the microkernel change"
            );
            if require_same_isa {
                eprintln!("error: --require-same-isa: refusing to compare across ISAs");
                std::process::exit(EXIT_ISA_MISMATCH);
            }
        }
        (bi, ci) if require_same_isa && (bi.is_none() || ci.is_none()) => {
            // A snapshot without provenance cannot prove it is
            // like-for-like; under the gating flag that is a refusal too.
            eprintln!(
                "error: --require-same-isa: snapshot(s) carry no simd_isa manifest \
                 (baseline: {}, candidate: {})",
                isa_of(&base),
                isa_of(&cand)
            );
            std::process::exit(EXIT_ISA_MISMATCH);
        }
        _ => {}
    }

    let entries = diff(&base, &cand, &cfg);
    if entries.is_empty() {
        // Nothing comparable is a configuration error, not a pass.
        eprintln!("error: the snapshots share no (n, precision, variant) cells");
        std::process::exit(2);
    }

    println!(
        "\n  {:>6} {:>5} {:>10} {:>10} {:>10} {:>8} {:>8}  verdict",
        "n", "prec", "variant", "base", "cand", "change", "tol"
    );
    let mut regressed = 0usize;
    let mut improved = 0usize;
    for e in &entries {
        let mark = match e.verdict {
            Verdict::Regressed => {
                regressed += 1;
                "REGRESSED"
            }
            Verdict::Improved => {
                improved += 1;
                "improved"
            }
            Verdict::Ok => "ok",
        };
        println!(
            "  {:>6} {:>5} {:>10} {:>10.3} {:>10.3} {:>+7.1}% {:>7.1}%  {mark}",
            e.n,
            e.precision,
            e.variant,
            e.base,
            e.cand,
            e.rel_change * 100.0,
            e.threshold * 100.0
        );
    }
    println!(
        "\n{} cells compared: {regressed} regressed, {improved} improved, {} within noise",
        entries.len(),
        entries.len() - regressed - improved
    );
    if regressed > 0 {
        if warn_only {
            println!("warn-only mode: not failing the run");
        } else {
            std::process::exit(1);
        }
    }
}
