//! Ablations A1 and A2: the design choices DESIGN.md calls out.
//!
//! * **A1 — thread pinning** (§IV.A discussion): the same kernel with and
//!   without affinity on the 4-NUMA EPYC vs. the 1-NUMA Altra. Pinning
//!   matters exactly where the paper says it does.
//! * **A2 — loop schedule and granularity**: static vs. dynamic vs.
//!   guided on the modelled node (uniform GEMM rows make static optimal),
//!   plus coarse row-parallel vs. fine element-grid decomposition on the
//!   real host pool.
//! * **A7 — register-tile shape** of the tuned vendor stand-in: every
//!   supported MR×NR microkernel shape, measured on the host pool, next to
//!   the shape `TunedParams::host` auto-selects.

use perfport_bench::HarnessArgs;
use perfport_gemm::{par_gemm, par_gemm_element_grid, CpuVariant, Matrix};
use perfport_machines::{
    estimate_cpu_gemm, numa_locality, CpuExecution, CpuMachine, GemmShape, Precision,
};
use perfport_pool::{Schedule, ThreadPool};
use std::time::Instant;

fn main() {
    let args = HarnessArgs::from_env();
    let trace = args.start_trace();
    pinning_ablation();
    schedule_ablation();
    granularity_ablation();
    tiling_ablation();
    tile_shape_ablation(&args);
    if let Some(trace) = trace {
        trace.finish();
    }
}

/// A1: modelled pinning effect per machine.
fn pinning_ablation() {
    println!("== A1: thread pinning (modelled) ==");
    println!(
        "  {:<16} {:>10} {:>14} {:>14} {:>8}",
        "machine", "locality", "pinned GF/s", "unpinned GF/s", "ratio"
    );
    for machine in [CpuMachine::epyc_7a53(), CpuMachine::ampere_altra()] {
        let shape = GemmShape::square(4096);
        let mut exec = CpuExecution::vendor_baseline(&machine);
        let pinned = estimate_cpu_gemm(&machine, Precision::Double, &shape, &exec);
        exec.pinned = false;
        let unpinned = estimate_cpu_gemm(&machine, Precision::Double, &shape, &exec);
        println!(
            "  {:<16} {:>10.3} {:>14.1} {:>14.1} {:>8.2}",
            machine.name,
            numa_locality(&machine, false),
            pinned.gflops,
            unpinned.gflops,
            pinned.gflops / unpinned.gflops
        );
    }
    println!();
}

/// A2a: loop schedules on the real host pool (wall-clock).
fn schedule_ablation() {
    println!("== A2a: loop schedule (host measurement) ==");
    let n = 512;
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let a = Matrix::<f64>::random(n, n, perfport_gemm::Layout::RowMajor, 1);
    let b = Matrix::<f64>::random(n, n, perfport_gemm::Layout::RowMajor, 2);
    println!(
        "  n={n}, {threads} host threads; {:<22} {:>10} {:>10}",
        "schedule", "ms", "imbalance"
    );
    for (label, schedule) in [
        ("static (block)", Schedule::StaticBlock),
        ("static, chunk 4", Schedule::StaticChunked { chunk: 4 }),
        ("dynamic, chunk 4", Schedule::Dynamic { chunk: 4 }),
        ("guided, min 2", Schedule::Guided { min_chunk: 2 }),
    ] {
        let mut c = Matrix::<f64>::zeros(n, n, perfport_gemm::Layout::RowMajor);
        // Warm-up then timed run, mirroring the paper's protocol.
        par_gemm(&pool, CpuVariant::OpenMpC, &a, &b, &mut c, schedule);
        c.fill_zero();
        let t0 = Instant::now();
        let stats = par_gemm(&pool, CpuVariant::OpenMpC, &a, &b, &mut c, schedule);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("  {:<40} {:>10.2} {:>10.3}", label, ms, stats.imbalance());
    }
    println!();
}

/// A2b: coarse vs. fine granularity on the host pool.
fn granularity_ablation() {
    println!("== A2b: coarse rows vs. fine element grid (host measurement) ==");
    let n = 384;
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(8));
    let pool = ThreadPool::new(threads);
    let a = Matrix::<f64>::random(n, n, perfport_gemm::Layout::RowMajor, 3);
    let b = Matrix::<f64>::random(n, n, perfport_gemm::Layout::RowMajor, 4);

    let mut c = Matrix::<f64>::zeros(n, n, perfport_gemm::Layout::RowMajor);
    par_gemm(
        &pool,
        CpuVariant::OpenMpC,
        &a,
        &b,
        &mut c,
        Schedule::StaticBlock,
    );
    c.fill_zero();
    let t0 = Instant::now();
    par_gemm(
        &pool,
        CpuVariant::OpenMpC,
        &a,
        &b,
        &mut c,
        Schedule::StaticBlock,
    );
    let coarse_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut c2 = Matrix::<f64>::zeros(n, n, perfport_gemm::Layout::RowMajor);
    par_gemm_element_grid(&pool, &a, &b, &mut c2, Schedule::Dynamic { chunk: 256 });
    c2.fill_zero();
    let t0 = Instant::now();
    par_gemm_element_grid(&pool, &a, &b, &mut c2, Schedule::Dynamic { chunk: 256 });
    let fine_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("  n={n}: coarse rows {coarse_ms:.2} ms, fine element-grid {fine_ms:.2} ms");
    println!(
        "  (the paper uses coarse granularity on CPUs and fine on GPUs; \
         on a CPU the dot-product-per-element form loses row streaming)"
    );
}

/// A3: what the naive kernel leaves on the table — shared-memory tiling
/// measured on the SIMT simulator's counters.
fn tiling_ablation() {
    use perfport_gemm::{gpu_gemm, gpu_gemm_tiled, GpuVariant, Layout};
    use perfport_gpusim::{Dim3, Gpu};

    println!();
    println!("== A3: naive vs shared-memory-tiled GPU GEMM (simulator counters) ==");
    let n = 128;
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 7);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 8);
    let gpu = Gpu::new(GpuVariant::Cuda.device_class());
    let (_, naive) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(16, 16)).unwrap();
    let (_, tiled) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
    println!(
        "  {:<10} {:>14} {:>14} {:>16} {:>14}",
        "kernel", "flops", "global loads", "load transacts", "shared loads"
    );
    for (label, s) in [("naive", &naive), ("tiled", &tiled)] {
        println!(
            "  {:<10} {:>14} {:>14} {:>16} {:>14}",
            label, s.flops, s.loads, s.load_transactions, s.shared_loads
        );
    }
    println!(
        "  global traffic reduction: {:.1}x (tile size {}); the paper's kernels \
         forgo this deliberately to isolate each model's default codegen",
        naive.loads as f64 / tiled.loads as f64,
        perfport_gemm::TILE
    );
}

/// A7: register-tile shape sweep of the tuned packed kernel — every
/// supported MR×NR microkernel, wall-clock on the host pool.
fn tile_shape_ablation(args: &HarnessArgs) {
    use perfport_gemm::{gemm_flops, tuned, Layout, TileShape, TunedParams};
    use perfport_pool::CacheInfo;

    let n = if args.quick { 512 } else { 1024 };
    let reps = if args.quick { 2 } else { 3 };
    let pool = args.make_pool();
    let cache = CacheInfo::host();
    let auto = TunedParams::host::<f64>();

    println!();
    println!("== A7: tuned-kernel register-tile shape (host measurement) ==");
    println!(
        "  n={n} FP64, {} workers; {:>6} {:>12} {:>24}",
        pool.num_threads(),
        "tile",
        "GFLOP/s",
        "blocks (mc/kc/nc)"
    );
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 11);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 12);
    let flops = gemm_flops(n, n, n);
    for tile in TileShape::ALL {
        let params = TunedParams::with_tile(cache, tile, std::mem::size_of::<f64>());
        let mut c = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
        tuned::gemm(&pool, &a, &b, &mut c, &params); // warm-up (excluded)
        let t0 = Instant::now();
        for _ in 0..reps {
            c.fill_zero();
            tuned::gemm(&pool, &a, &b, &mut c, &params);
        }
        let gflops = flops as f64 * reps as f64 / t0.elapsed().as_secs_f64() / 1e9;
        let marker = if tile == auto.tile {
            "  <- auto-selected"
        } else {
            ""
        };
        println!(
            "  {:>33} {:>12.3} {:>15}/{}/{}{marker}",
            tile.name(),
            gflops,
            params.blocks.mc,
            params.blocks.kc,
            params.blocks.nc
        );
    }
    println!(
        "  (wider tiles amortise B-panel loads until the accumulator block \
         spills out of registers; `TunedParams::host` picks by element width)"
    );
}
