//! Native host measurements of the hand-rolled kernels against the tuned
//! vendor-BLAS stand-in — the measured numerator *and* denominator of the
//! paper's host efficiency story, on whatever machine builds this repo.
//!
//! Unlike the figure binaries (which model the paper's machines), every
//! number printed here is a genuine wall-clock measurement of the Rust
//! kernels on the build host, following the paper's protocol: one warm-up
//! run excluded, then the mean of several repetitions. Alongside the
//! human-readable tables the run emits `BENCH_gemm.json`, the machine-
//! readable baseline snapshot (the committed copy at the repo root is the
//! build host's measured vendor-headroom evidence).
//!
//! `--quick` restricts the sweep to the headline 1024² size; the
//! tuned-over-best-naive ratio is printed either way.

use perfport_bench::HarnessArgs;
use perfport_gemm::serial::gemm_loop_order;
use perfport_gemm::{gemm_flops, par_gemm, tuned, CpuVariant, Layout, LoopOrder, Matrix, Scalar};
use perfport_half::F16;
use perfport_pool::{CacheInfo, Schedule, ThreadPool};
use std::fmt::Write as _;
use std::time::Instant;

fn time_gflops(reps: usize, flops: u64, mut run: impl FnMut()) -> f64 {
    run(); // warm-up, excluded (the paper's protocol)
    let t0 = Instant::now();
    for _ in 0..reps {
        run();
    }
    let per_rep = t0.elapsed().as_secs_f64() / reps as f64;
    flops as f64 / per_rep / 1e9
}

fn serial_sweep<T: Scalar>(reps: usize, n: usize) -> Vec<(&'static str, f64)> {
    let a = Matrix::<T>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<T>::random(n, n, Layout::RowMajor, 2);
    LoopOrder::ALL
        .iter()
        .map(|&order| {
            let g = time_gflops(reps, gemm_flops(n, n, n), || {
                let mut c = Matrix::<T>::zeros(n, n, Layout::RowMajor);
                gemm_loop_order(order, &a, &b, &mut c);
                std::hint::black_box(&c);
            });
            (order.name(), g)
        })
        .collect()
}

/// One size point: every portable model plus the tuned vendor kernel.
struct SizePoint {
    n: usize,
    precision: &'static str,
    /// `(variant name, GFLOP/s)` for the four portable models.
    naive: Vec<(&'static str, f64)>,
    vendor: f64,
}

impl SizePoint {
    fn best_naive(&self) -> (&'static str, f64) {
        self.naive
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one portable model")
    }

    fn headroom(&self) -> f64 {
        self.vendor / self.best_naive().1
    }
}

fn measure_point<T: Scalar>(pool: &ThreadPool, reps: usize, n: usize) -> SizePoint {
    let flops = gemm_flops(n, n, n);
    let naive = CpuVariant::ALL
        .iter()
        .map(|&v| {
            let layout = v.layout();
            let a = Matrix::<T>::random(n, n, layout, 3);
            let b = Matrix::<T>::random(n, n, layout, 4);
            let g = time_gflops(reps, flops, || {
                let mut c = Matrix::<T>::zeros(n, n, layout);
                par_gemm(pool, v, &a, &b, &mut c, Schedule::StaticBlock);
                std::hint::black_box(&c);
            });
            (v.name(), g)
        })
        .collect();
    let a = Matrix::<T>::random(n, n, Layout::RowMajor, 3);
    let b = Matrix::<T>::random(n, n, Layout::RowMajor, 4);
    let params = tuned::TunedParams::host::<T>();
    let vendor = time_gflops(reps, flops, || {
        let mut c = Matrix::<T>::zeros(n, n, Layout::RowMajor);
        tuned::gemm(pool, &a, &b, &mut c, &params);
        std::hint::black_box(&c);
    });
    SizePoint {
        n,
        precision: T::NAME,
        naive,
        vendor,
    }
}

fn print_points(points: &[SizePoint], csv: bool) {
    println!(
        "  {:>6} {:>5}  {:>9} {:>9} {:>9} {:>9} {:>9}  {:>10} {:>12}",
        "n", "prec", "c-openmp", "kokkos", "julia", "numba", "vendor", "best-naive", "vendor/naive"
    );
    for p in points {
        let (bn_name, bn) = p.best_naive();
        print!("  {:>6} {:>5} ", p.n, p.precision);
        for &(_, g) in &p.naive {
            print!(" {g:>9.3}");
        }
        println!(
            " {:>9.3}  {:>10} {:>11.2}x",
            p.vendor,
            bn_name,
            p.vendor / bn
        );
    }
    if csv {
        println!("-- csv --");
        println!("n,precision,variant,gflops");
        for p in points {
            for &(name, g) in &p.naive {
                println!("{},{},{},{g:.4}", p.n, p.precision, name);
            }
            println!("{},{},vendor,{:.4}", p.n, p.precision, p.vendor);
        }
    }
}

fn json_snapshot(
    points: &[SizePoint],
    workers: usize,
    cache: CacheInfo,
    reps: usize,
    quick: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"perfport-bench-gemm/1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"host\": {{\"workers\": {workers}, \"l1d_bytes\": {}, \"l2_bytes\": {}, \"l3_bytes\": {}}},",
        cache.l1d_bytes, cache.l2_bytes, cache.l3_bytes
    );
    let _ = writeln!(
        out,
        "  \"protocol\": {{\"reps\": {reps}, \"warmup_runs\": 1, \"metric\": \"gflops\"}},"
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let (bn_name, bn) = p.best_naive();
        let _ = write!(
            out,
            "    {{\"n\": {}, \"precision\": \"{}\", ",
            p.n, p.precision
        );
        for &(name, g) in &p.naive {
            let _ = write!(out, "\"{name}\": {g:.4}, ");
        }
        let _ = write!(
            out,
            "\"vendor\": {:.4}, \"best_naive\": \"{bn_name}\", \"vendor_over_naive\": {:.4}}}",
            p.vendor,
            p.vendor / bn
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = HarnessArgs::from_env();
    let trace = args.start_trace();
    let reps = if args.quick { 3 } else { 5 };
    let workers = args.thread_count();
    let cache = CacheInfo::host();
    let pool = ThreadPool::new(workers);
    println!(
        "host: {workers} workers; caches L1d={}K L2={}K L3={}K; {reps} reps after warm-up\n",
        cache.l1d_bytes / 1024,
        cache.l2_bytes / 1024,
        cache.l3_bytes / 1024
    );

    if !args.quick {
        let n = 256;
        println!("== serial loop orders (FP64, n={n}), measured GFLOP/s ==");
        for (name, g) in serial_sweep::<f64>(reps, n) {
            println!("  {name:<6} {g:>8.3}");
        }
        println!("\n== precision sweep (ikj serial, n={n}), measured GFLOP/s ==");
        for (label, g) in [
            ("FP64", serial_sweep::<f64>(reps, n)[1].1),
            ("FP32", serial_sweep::<f32>(reps, n)[1].1),
            ("FP16 (software)", serial_sweep::<F16>(reps, 128)[1].1),
        ] {
            println!("  {label:<16} {g:>8.3}");
        }
        println!();
    }

    println!("== portable models vs tuned vendor baseline, measured GFLOP/s ==");
    let sizes: &[usize] = if args.quick {
        &[1024]
    } else {
        &[256, 512, 1024]
    };
    let mut points = Vec::new();
    for &n in sizes {
        points.push(measure_point::<f64>(&pool, reps, n));
    }
    points.push(measure_point::<f32>(&pool, reps, 1024));
    print_points(&points, args.csv);

    let headline = points
        .iter()
        .find(|p| p.n >= 1024 && p.precision == "FP64")
        .expect("sweep includes the headline size");
    println!(
        "\nheadline: tuned vendor kernel is {:.2}x the fastest naive model\n\
         ({}) at n={} FP64 — the measured headroom Table III's host\n\
         efficiencies are scaled by.",
        headline.headroom(),
        headline.best_naive().0,
        headline.n
    );

    let json = json_snapshot(&points, workers, cache, reps, args.quick);
    let path = "BENCH_gemm.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}
