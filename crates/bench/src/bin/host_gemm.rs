//! Native host measurements of the hand-rolled kernels against the tuned
//! vendor-BLAS stand-in — the measured numerator *and* denominator of the
//! paper's host efficiency story, on whatever machine builds this repo.
//!
//! Unlike the figure binaries (which model the paper's machines), every
//! number printed here is a genuine wall-clock measurement of the Rust
//! kernels on the build host, following the paper's protocol: one warm-up
//! run excluded, then the mean of several repetitions. Alongside the
//! human-readable tables the run emits `BENCH_gemm.json`, the machine-
//! readable baseline snapshot (the committed copy at the repo root is the
//! build host's measured vendor-headroom evidence).
//!
//! The snapshot uses schema `perfport-bench-gemm/3`: it carries the run's
//! provenance manifest (git SHA, rustc, CPU model, cache hierarchy and
//! its source, hardware-counter availability), the relative rep spread
//! per cell (what `bench_diff` derives its noise-aware thresholds from),
//! a `telemetry` block (the always-on runtime counters and streaming
//! histograms recorded during the measured sweep, stamped as deltas from
//! a pre-measurement epoch so warm-up does not inflate them), and —
//! under `--profile`, when counters are available — per-variant IPC and
//! cache-miss rates from `perf_event_open` groups read around the pool
//! regions.
//!
//! `--quick` restricts the sweep to the headline 1024² size; the
//! tuned-over-best-naive ratio is printed either way.

use perfport_bench::{HarnessArgs, Manifest};
use perfport_gemm::serial::gemm_loop_order;
use perfport_gemm::{gemm_flops, par_gemm, tuned, CpuVariant, Layout, LoopOrder, Matrix, Scalar};
use perfport_half::F16;
use perfport_obs::{self as obs, HwCounter};
use perfport_pool::{Schedule, ThreadPool};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed kernel: mean rate, rep noise, and (when profiling) the
/// hardware-counter delta attributed to the timed reps.
struct Measured {
    gflops: f64,
    /// Relative half-range of the per-rep rates, `(max-min)/(2·mean)` —
    /// the committed noise evidence `bench_diff` thresholds on.
    spread: f64,
    /// Counter totals accumulated during the timed reps (warm-up
    /// excluded), when profiling is on and counters work.
    hw: Option<obs::Totals>,
}

fn measure(reps: usize, flops: u64, mut run: impl FnMut()) -> Measured {
    run(); // warm-up, excluded (the paper's protocol)
    let hw_before = obs::totals();
    let mut rates = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        rates.push(flops as f64 / t0.elapsed().as_secs_f64() / 1e9);
    }
    let hw = obs::enabled().then(|| obs::totals().delta(&hw_before));
    let mean = rates.iter().sum::<f64>() / reps as f64;
    let (min, max) = rates
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &r| {
            (lo.min(r), hi.max(r))
        });
    Measured {
        gflops: mean,
        spread: if mean > 0.0 {
            (max - min) / (2.0 * mean)
        } else {
            0.0
        },
        hw,
    }
}

fn serial_sweep<T: Scalar>(reps: usize, n: usize) -> Vec<(&'static str, f64)> {
    let a = Matrix::<T>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<T>::random(n, n, Layout::RowMajor, 2);
    LoopOrder::ALL
        .iter()
        .map(|&order| {
            let m = measure(reps, gemm_flops(n, n, n), || {
                let mut c = Matrix::<T>::zeros(n, n, Layout::RowMajor);
                gemm_loop_order(order, &a, &b, &mut c);
                std::hint::black_box(&c);
            });
            (order.name(), m.gflops)
        })
        .collect()
}

/// One size point: every portable model plus the tuned vendor kernel.
struct SizePoint {
    n: usize,
    precision: &'static str,
    /// `(variant name, measurement)` for the four portable models.
    naive: Vec<(&'static str, Measured)>,
    vendor: Measured,
}

impl SizePoint {
    fn best_naive(&self) -> (&'static str, f64) {
        self.naive
            .iter()
            .map(|(name, m)| (*name, m.gflops))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one portable model")
    }

    fn headroom(&self) -> f64 {
        self.vendor.gflops / self.best_naive().1
    }

    /// Every variant including the vendor kernel, for uniform output.
    fn all(&self) -> impl Iterator<Item = (&'static str, &Measured)> {
        self.naive
            .iter()
            .map(|(name, m)| (*name, m))
            .chain(std::iter::once(("vendor", &self.vendor)))
    }
}

fn measure_point<T: Scalar>(pool: &ThreadPool, reps: usize, n: usize) -> SizePoint {
    let flops = gemm_flops(n, n, n);
    let naive = CpuVariant::ALL
        .iter()
        .map(|&v| {
            let layout = v.layout();
            let a = Matrix::<T>::random(n, n, layout, 3);
            let b = Matrix::<T>::random(n, n, layout, 4);
            let m = measure(reps, flops, || {
                let mut c = Matrix::<T>::zeros(n, n, layout);
                par_gemm(pool, v, &a, &b, &mut c, Schedule::StaticBlock);
                std::hint::black_box(&c);
            });
            (v.name(), m)
        })
        .collect();
    let a = Matrix::<T>::random(n, n, Layout::RowMajor, 3);
    let b = Matrix::<T>::random(n, n, Layout::RowMajor, 4);
    let params = tuned::TunedParams::host::<T>();
    let vendor = measure(reps, flops, || {
        let mut c = Matrix::<T>::zeros(n, n, Layout::RowMajor);
        tuned::gemm(pool, &a, &b, &mut c, &params);
        std::hint::black_box(&c);
    });
    SizePoint {
        n,
        precision: T::NAME,
        naive,
        vendor,
    }
}

fn print_points(points: &[SizePoint], csv: bool, profiling: bool) {
    println!(
        "  {:>6} {:>5}  {:>9} {:>9} {:>9} {:>9} {:>9}  {:>10} {:>12}",
        "n", "prec", "c-openmp", "kokkos", "julia", "numba", "vendor", "best-naive", "vendor/naive"
    );
    for p in points {
        let (bn_name, bn) = p.best_naive();
        print!("  {:>6} {:>5} ", p.n, p.precision);
        for (_, m) in &p.naive {
            print!(" {:>9.3}", m.gflops);
        }
        println!(
            " {:>9.3}  {:>10} {:>11.2}x",
            p.vendor.gflops,
            bn_name,
            p.vendor.gflops / bn
        );
    }
    let have_hw = points.iter().any(|p| p.all().any(|(_, m)| m.hw.is_some()));
    if profiling && !have_hw {
        println!("\n  (--profile requested but counters are unavailable; timing-only)");
    }
    if have_hw {
        println!("\n  hardware counters per variant (timed reps only):");
        println!(
            "  {:>6} {:>5} {:>10} {:>7} {:>10} {:>10} {:>10}",
            "n", "prec", "variant", "IPC", "L1d/ki", "LLC/ki", "branch/ki"
        );
        for p in points {
            for (name, m) in p.all() {
                let Some(hw) = &m.hw else { continue };
                let fmt = |v: Option<f64>| match v {
                    Some(v) => format!("{v:.2}"),
                    None => "-".to_string(),
                };
                println!(
                    "  {:>6} {:>5} {:>10} {:>7} {:>10} {:>10} {:>10}",
                    p.n,
                    p.precision,
                    name,
                    fmt(hw.ipc()),
                    fmt(hw.per_kilo_instruction(HwCounter::L1dMisses)),
                    fmt(hw.per_kilo_instruction(HwCounter::LlcMisses)),
                    fmt(hw.per_kilo_instruction(HwCounter::BranchMisses)),
                );
            }
        }
    }
    if csv {
        println!("-- csv --");
        println!("n,precision,variant,gflops,spread");
        for p in points {
            for (name, m) in p.all() {
                println!(
                    "{},{},{name},{:.4},{:.4}",
                    p.n, p.precision, m.gflops, m.spread
                );
            }
        }
    }
}

fn json_snapshot(
    points: &[SizePoint],
    manifest: &Manifest,
    epoch: &perfport_bench::TelemetryEpoch,
    reps: usize,
    quick: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"perfport-bench-gemm/3\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"manifest\":");
    let _ = writeln!(out, "{},", manifest.to_json(2));
    let _ = writeln!(
        out,
        "  \"protocol\": {{\"reps\": {reps}, \"warmup_runs\": 1, \"metric\": \"gflops\", \"spread\": \"rel_half_range\"}},"
    );
    let _ = writeln!(
        out,
        "  \"sched\": {},",
        perfport_bench::sched_totals_json_since(epoch)
    );
    let _ = writeln!(out, "  \"telemetry\":");
    let _ = writeln!(
        out,
        "{},",
        perfport_bench::telemetry_json_since(epoch, "  ")
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let (bn_name, bn) = p.best_naive();
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"precision\": \"{}\",",
            p.n, p.precision
        );
        let fields = |f: &dyn Fn(&Measured) -> f64| {
            let mut s = String::from("{");
            for (j, (name, m)) in p.all().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{name}\": {:.4}", f(m));
            }
            s.push('}');
            s
        };
        let _ = writeln!(out, "     \"gflops\": {},", fields(&|m| m.gflops));
        let _ = writeln!(out, "     \"spread\": {},", fields(&|m| m.spread));
        if p.all().any(|(_, m)| m.hw.is_some()) {
            out.push_str("     \"profile\": {");
            let mut first = true;
            for (name, m) in p.all() {
                let Some(hw) = &m.hw else { continue };
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let num =
                    |v: Option<f64>| v.map_or_else(|| "null".to_string(), |v| format!("{v:.4}"));
                let _ = write!(
                    out,
                    "\"{name}\": {{\"ipc\": {}, \"llc_mpki\": {}, \"l1d_mpki\": {}}}",
                    num(hw.ipc()),
                    num(hw.per_kilo_instruction(HwCounter::LlcMisses)),
                    num(hw.per_kilo_instruction(HwCounter::L1dMisses)),
                );
            }
            out.push_str("},\n");
        }
        let _ = write!(
            out,
            "     \"best_naive\": \"{bn_name}\", \"vendor_over_naive\": {:.4}}}",
            p.vendor.gflops / bn
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = HarnessArgs::from_env();
    let sched = args.apply_sched();
    args.start_profiling();
    let trace = args.start_trace();
    let reps = if args.quick { 3 } else { 5 };
    let workers = args.thread_count();
    let pool = ThreadPool::new(workers);
    let manifest = Manifest::collect(workers);
    println!(
        "host: {workers} workers; caches L1d={}K L2={}K L3={}K ({}); {reps} reps after warm-up; counters {}; tuned microkernel ISA: {}; scheduler: {sched}\n",
        manifest.cache.l1d_bytes / 1024,
        manifest.cache.l2_bytes / 1024,
        manifest.cache.l3_bytes / 1024,
        manifest.cache.source,
        manifest.counters,
        manifest.simd_isa
    );
    // Telemetry epoch: everything stamped into the snapshot is a delta
    // from here, so pool construction above stays out of the evidence.
    let epoch = perfport_bench::telemetry_epoch();

    if !args.quick {
        let n = 256;
        println!("== serial loop orders (FP64, n={n}), measured GFLOP/s ==");
        for (name, g) in serial_sweep::<f64>(reps, n) {
            println!("  {name:<6} {g:>8.3}");
        }
        println!("\n== precision sweep (ikj serial, n={n}), measured GFLOP/s ==");
        for (label, g) in [
            ("FP64", serial_sweep::<f64>(reps, n)[1].1),
            ("FP32", serial_sweep::<f32>(reps, n)[1].1),
            ("FP16 (software)", serial_sweep::<F16>(reps, 128)[1].1),
        ] {
            println!("  {label:<16} {g:>8.3}");
        }
        println!();
    }

    println!("== portable models vs tuned vendor baseline, measured GFLOP/s ==");
    let sizes: &[usize] = if args.quick {
        &[1024]
    } else {
        &[256, 512, 1024]
    };
    let mut points = Vec::new();
    for &n in sizes {
        points.push(measure_point::<f64>(&pool, reps, n));
    }
    points.push(measure_point::<f32>(&pool, reps, 1024));
    print_points(&points, args.csv, args.profile);

    let headline = points
        .iter()
        .find(|p| p.n >= 1024 && p.precision == "FP64")
        .expect("sweep includes the headline size");
    println!(
        "\nheadline: tuned vendor kernel is {:.2}x the fastest naive model\n\
         ({}) at n={} FP64 — the measured headroom Table III's host\n\
         efficiencies are scaled by.",
        headline.headroom(),
        headline.best_naive().0,
        headline.n
    );

    let json = json_snapshot(&points, &manifest, &epoch, reps, args.quick);
    let path = "BENCH_gemm.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}
