//! Native host measurements of the hand-rolled kernels — the paper's
//! "exploratory science code" lower bound, measured for real on whatever
//! machine builds this repository.
//!
//! Unlike the figure binaries (which model the paper's machines), every
//! number printed here is a genuine wall-clock measurement of the Rust
//! kernels on the build host, following the paper's protocol: one warm-up
//! run excluded, then the mean of five repetitions.

use perfport_gemm::serial::gemm_loop_order;
use perfport_gemm::{gemm_flops, par_gemm, CpuVariant, LoopOrder, Matrix, Scalar};
use perfport_half::F16;
use perfport_pool::{Schedule, ThreadPool};
use std::time::Instant;

const REPS: usize = 5;

fn time_gflops(flops: u64, mut run: impl FnMut()) -> f64 {
    run(); // warm-up, excluded (the paper's protocol)
    let t0 = Instant::now();
    for _ in 0..REPS {
        run();
    }
    let per_rep = t0.elapsed().as_secs_f64() / REPS as f64;
    flops as f64 / per_rep / 1e9
}

fn serial_sweep<T: Scalar>(n: usize) -> Vec<(&'static str, f64)> {
    let a = Matrix::<T>::random(n, n, perfport_gemm::Layout::RowMajor, 1);
    let b = Matrix::<T>::random(n, n, perfport_gemm::Layout::RowMajor, 2);
    LoopOrder::ALL
        .iter()
        .map(|&order| {
            let g = time_gflops(gemm_flops(n, n, n), || {
                let mut c = Matrix::<T>::zeros(n, n, perfport_gemm::Layout::RowMajor);
                gemm_loop_order(order, &a, &b, &mut c);
                std::hint::black_box(&c);
            });
            (order.name(), g)
        })
        .collect()
}

fn main() {
    let n = 256;
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("host: {threads} hardware threads visible; n = {n}, {REPS} reps after warm-up\n");

    println!("== serial loop orders (FP64), measured GFLOP/s ==");
    for (name, g) in serial_sweep::<f64>(n) {
        println!("  {name:<6} {g:>8.3}");
    }

    println!("\n== precision sweep (ikj serial), measured GFLOP/s ==");
    for (label, g) in [
        ("FP64", serial_sweep::<f64>(n)[1].1),
        ("FP32", serial_sweep::<f32>(n)[1].1),
        ("FP16 (software)", serial_sweep::<F16>(128)[1].1),
    ] {
        println!("  {label:<16} {g:>8.3}");
    }

    println!("\n== per-model parallel kernels on the pool, measured GFLOP/s ==");
    let pool = ThreadPool::new(threads.min(8));
    for v in CpuVariant::ALL {
        let layout = v.layout();
        let a = Matrix::<f64>::random(n, n, layout, 3);
        let b = Matrix::<f64>::random(n, n, layout, 4);
        let g = time_gflops(gemm_flops(n, n, n), || {
            let mut c = Matrix::<f64>::zeros(n, n, layout);
            par_gemm(&pool, v, &a, &b, &mut c, Schedule::StaticBlock);
            std::hint::black_box(&c);
        });
        println!("  {:<10} {g:>8.3}", v.name());
    }

    println!(
        "\nAll results verified against the f64 reference in the test suite; the\n\
         software-FP16 penalty visible above is the same effect the paper hit on\n\
         Zen 3 CPUs without native half-precision arithmetic."
    );
}
