//! Regenerates Fig. 5: Wombat CPU (Ampere Altra) multithreaded GEMM,
//! 80 threads, FP64 / FP32 / Julia FP16.

fn main() {
    let args = perfport_bench::HarnessArgs::from_env();
    perfport_bench::print_panels(&["fig5a", "fig5b", "fig5c"], &args);
}
