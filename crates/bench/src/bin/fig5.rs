//! Regenerates Fig. 5: Wombat CPU (Ampere Altra) multithreaded GEMM,
//! 80 threads, FP64 / FP32 / Julia FP16.
//!
//! `--shard i/n` / `--jobs N` switch to the sharded per-point study
//! runner (see `perfport_core::shard`): shard outputs concatenate
//! byte-identically to the single-shot CSV.

fn main() {
    let (args, study) = perfport_bench::parse_study_args();
    perfport_bench::print_study(&["fig5a", "fig5b", "fig5c"], &args, &study);
}
