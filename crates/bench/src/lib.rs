//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary accepts `--quick` (reduced sweep for smoke testing),
//! `--csv` (machine-readable output next to the human-readable table),
//! and `--trace <path>` (write a Chrome `trace_event` file capturing
//! region, kernel-launch, and size-point spans for the run).

use perfport_core::{figure_specs, render_csv, render_figure, FigureSpec, StudyConfig};
use std::path::PathBuf;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Reduced sweep.
    pub quick: bool,
    /// Also print CSV blocks.
    pub csv: bool,
    /// Write a Chrome trace of the run here.
    pub trace: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parses the arguments every binary supports.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--trace" => match it.next() {
                    Some(path) => out.trace = Some(PathBuf::from(path)),
                    None => eprintln!("--trace requires a path argument"),
                },
                other => {
                    if let Some(path) = other.strip_prefix("--trace=") {
                        out.trace = Some(PathBuf::from(path));
                    } else if matches!(other, "--help" | "-h") {
                        eprintln!("usage: [--quick] [--csv] [--trace <path>]");
                    }
                }
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The study configuration these arguments select.
    pub fn config(&self) -> StudyConfig {
        if self.quick {
            StudyConfig::quick()
        } else {
            StudyConfig::default()
        }
    }

    /// Starts a global trace session when `--trace` was given. Call
    /// [`TraceOutput::finish`] after the run to write the file.
    pub fn start_trace(&self) -> Option<TraceOutput> {
        self.trace.as_ref().map(|path| TraceOutput {
            session: perfport_trace::TraceSession::start(),
            path: path.clone(),
        })
    }
}

/// A live trace session bound to its output file.
pub struct TraceOutput {
    session: perfport_trace::TraceSession,
    path: PathBuf,
}

impl TraceOutput {
    /// Stops recording and writes the Chrome `trace_event` JSON. The
    /// harness binaries treat a write failure as fatal: a requested
    /// trace that silently vanishes is worse than an error.
    pub fn finish(self) {
        let events = self.session.finish();
        let chrome = perfport_trace::export::chrome(&events);
        if let Err(e) = std::fs::write(&self.path, chrome) {
            eprintln!("failed to write trace to {}: {e}", self.path.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} trace events to {} (open in chrome://tracing or ui.perfetto.dev,\n  or summarize with: cargo run -p perfport-bench --bin trace_report -- {})",
            events.len(),
            self.path.display(),
            self.path.display()
        );
    }
}

/// Finds a registered figure spec by id.
///
/// # Panics
///
/// Panics for unknown ids.
pub fn spec(id: &str) -> FigureSpec {
    figure_specs()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown figure id {id}"))
}

/// Runs the panels and prints them (plus CSV when requested).
pub fn print_panels(ids: &[&str], args: &HarnessArgs) {
    let trace = args.start_trace();
    let cfg = args.config();
    for id in ids {
        let spec = spec(id);
        let rows = spec.run(&cfg);
        println!("== {} ==", spec.id);
        println!("{}", render_figure(spec.title, &rows));
        if args.csv {
            println!("-- {} csv --", spec.id);
            println!("{}", render_csv(&rows));
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let a = HarnessArgs::parse(vec!["--quick".to_string(), "--csv".to_string()]);
        assert!(a.quick && a.csv);
        assert!(a.trace.is_none());
        let b = HarnessArgs::parse(Vec::<String>::new());
        assert!(!b.quick && !b.csv);
        assert_eq!(b.config().gpu_sizes.len(), 9);
        assert_eq!(a.config().gpu_sizes.len(), 2);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let a = HarnessArgs::parse(vec!["--trace".to_string(), "/tmp/x.trace".to_string()]);
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/x.trace"))
        );
        let b = HarnessArgs::parse(vec![
            "--trace=/tmp/y.trace".to_string(),
            "--quick".to_string(),
        ]);
        assert_eq!(
            b.trace.as_deref(),
            Some(std::path::Path::new("/tmp/y.trace"))
        );
        assert!(b.quick);
        // A dangling --trace is reported, not fatal.
        let c = HarnessArgs::parse(vec!["--trace".to_string()]);
        assert!(c.trace.is_none());
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("fig4a").id, "fig4a");
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_spec_panics() {
        let _ = spec("fig9z");
    }
}
