//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary accepts `--quick` (reduced sweep for smoke testing),
//! `--csv` (machine-readable output next to the human-readable table),
//! `--threads <n>` (worker-team size, default: all available cores),
//! `--trace <path>` (write a Chrome `trace_event` file capturing region,
//! kernel-launch, and size-point spans for the run), and `--profile`
//! (read hardware counters around pool regions via `perfport-obs`;
//! degrades to timing-only with a note when counters are unavailable).
//! Unknown flags are an error: the binary prints the usage line and
//! exits with status 2. Binaries with extra flags (`host_gemm`,
//! `roofline_report`) extend the same parser via
//! [`HarnessArgs::try_parse_with`] /
//! [`HarnessArgs::try_parse_with_values`], so the shared set behaves
//! identically everywhere.
//!
//! The figure binaries additionally accept `--shard <i/n>` and
//! `--jobs <n>` ([`ShardArgs`]): sharded invocations emit the canonical
//! per-point study CSV instead of the human-readable panels, and
//! concatenating the stdout of shards `0/n..n-1/n` reproduces the
//! single-shot (`--shard 0/1`) artifact byte for byte (see
//! `perfport_core::shard`).

pub mod diff;
pub mod manifest;

pub use manifest::Manifest;

use perfport_core::{
    figure_efficiency, figure_specs, render_csv, render_efficiency, render_efficiency_csv,
    render_figure, render_study_csv, run_study_sharded, study_grid, FigureSpec, HostBaseline,
    Shard, StudyConfig,
};
use std::path::PathBuf;

/// The usage line shared by every regeneration binary.
pub const USAGE: &str =
    "usage: [--quick] [--csv] [--threads <n>] [--trace <path>] [--profile] [--sched barrier|graph]";

/// The usage line for the figure binaries, which also shard and select
/// the vendor baseline for the GPU efficiency rows.
pub const STUDY_USAGE: &str = "usage: [--quick] [--csv] [--threads <n>] [--trace <path>] [--profile] [--sched barrier|graph] [--shard <i/n>] [--jobs <n>] [--baseline measured|modelled]";

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Reduced sweep.
    pub quick: bool,
    /// Also print CSV blocks.
    pub csv: bool,
    /// Worker-team size override (`None`: all available cores).
    pub threads: Option<usize>,
    /// Write a Chrome trace of the run here.
    pub trace: Option<PathBuf>,
    /// Read hardware counters around pool regions and kernel sweeps.
    pub profile: bool,
    /// `--sched` override for the process scheduler (`None`: let
    /// `PERFPORT_SCHED` / the default decide).
    pub sched: Option<perfport_pool::SchedMode>,
    /// `--help`/`-h` was given; [`HarnessArgs::parse`] prints usage and
    /// exits before a binary ever observes this set.
    pub help: bool,
}

impl HarnessArgs {
    /// Parses the arguments every binary supports, returning an error
    /// message for anything unrecognised or malformed.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        Self::try_parse_with(args, |_| false)
    }

    /// Like [`HarnessArgs::try_parse`], but lets a binary accept extra
    /// boolean flags on top of the shared set: `extra` is called for any
    /// otherwise-unknown argument and returns whether it consumed it.
    pub fn try_parse_with<I: IntoIterator<Item = String>>(
        args: I,
        mut extra: impl FnMut(&str) -> bool,
    ) -> Result<Self, String> {
        Self::try_parse_with_values(args, |flag, _| Ok(extra(flag)))
    }

    /// The general extension hook: `extra` is called for any
    /// otherwise-unknown argument with a puller for the *next* raw
    /// argument, so binary-specific flags can take values (`--shard 0/2`)
    /// as well as report their own parse errors. Returning `Ok(false)`
    /// leaves the argument to the shared parser's unknown-flag rejection.
    pub fn try_parse_with_values<I: IntoIterator<Item = String>>(
        args: I,
        mut extra: impl FnMut(&str, &mut dyn FnMut() -> Option<String>) -> Result<bool, String>,
    ) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--profile" => out.profile = true,
                "--help" | "-h" => out.help = true,
                "--threads" => match it.next() {
                    Some(n) => out.threads = Some(parse_thread_count(&n)?),
                    None => return Err("--threads requires a count argument".to_string()),
                },
                "--trace" => match it.next() {
                    Some(path) => out.trace = Some(PathBuf::from(path)),
                    None => return Err("--trace requires a path argument".to_string()),
                },
                "--sched" => match it.next() {
                    Some(name) => out.sched = Some(perfport_pool::sched::resolve(Some(&name))?),
                    None => return Err("--sched requires a mode argument".to_string()),
                },
                other => {
                    if let Some(n) = other.strip_prefix("--threads=") {
                        out.threads = Some(parse_thread_count(n)?);
                    } else if let Some(path) = other.strip_prefix("--trace=") {
                        out.trace = Some(PathBuf::from(path));
                    } else if let Some(name) = other.strip_prefix("--sched=") {
                        out.sched = Some(perfport_pool::sched::resolve(Some(name))?);
                    } else if !extra(other, &mut || it.next())? {
                        return Err(format!("unknown argument '{other}'"));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Parses the arguments every binary supports; prints the usage line
    /// and exits non-zero on anything unrecognised (exits zero for
    /// `--help`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::parse_with_usage(args, USAGE, |_| false)
    }

    /// [`HarnessArgs::parse`] with a binary-specific usage line and extra
    /// flags (see [`HarnessArgs::try_parse_with`]).
    pub fn parse_with_usage<I: IntoIterator<Item = String>>(
        args: I,
        usage: &str,
        extra: impl FnMut(&str) -> bool,
    ) -> Self {
        match Self::try_parse_with(args, extra) {
            Ok(out) if out.help => {
                println!("{usage}");
                std::process::exit(0);
            }
            Ok(out) => out,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Pins the process scheduler when `--sched` was given (the CLI
    /// takes precedence over `PERFPORT_SCHED`) and returns the active
    /// mode either way. Binaries call this once, early, so every pool
    /// region and the provenance manifest see the same verdict.
    pub fn apply_sched(&self) -> perfport_pool::SchedMode {
        if let Some(mode) = self.sched {
            perfport_pool::sched::force(mode);
        }
        perfport_pool::sched::active()
    }

    /// Enables hardware-counter profiling when `--profile` was given,
    /// printing a one-line notice either way (to stderr, so tables stay
    /// clean). Returns whether counters are actually recording.
    pub fn start_profiling(&self) -> bool {
        if !self.profile {
            return false;
        }
        let avail = perfport_obs::try_enable();
        eprintln!("hardware counters: {}", avail.manifest_str());
        avail.is_available()
    }

    /// The worker-team size to run with: the `--threads` override, or
    /// every core the OS reports.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Builds the worker pool these arguments select.
    pub fn make_pool(&self) -> perfport_pool::ThreadPool {
        perfport_pool::ThreadPool::new(self.thread_count())
    }

    /// The study configuration these arguments select.
    pub fn config(&self) -> StudyConfig {
        if self.quick {
            StudyConfig::quick()
        } else {
            StudyConfig::default()
        }
    }

    /// Starts a global trace session when `--trace` was given, stamping
    /// the run's provenance manifest as the first event so every trace
    /// artifact records the machine/toolchain that produced it. Call
    /// [`TraceOutput::finish`] after the run to write the file.
    pub fn start_trace(&self) -> Option<TraceOutput> {
        self.start_trace_with(|_| {})
    }

    /// [`HarnessArgs::start_trace`] with a hook to stamp extra provenance
    /// (shard identity, job count) onto the manifest before it is emitted
    /// as the trace's first event.
    pub fn start_trace_with(&self, stamp: impl FnOnce(&mut Manifest)) -> Option<TraceOutput> {
        self.trace.as_ref().map(|path| {
            let session = perfport_trace::TraceSession::start();
            let mut manifest = Manifest::collect(self.thread_count());
            stamp(&mut manifest);
            perfport_trace::instant("bench", "manifest", manifest.trace_args());
            TraceOutput {
                session,
                path: path.clone(),
            }
        })
    }
}

/// The `--shard i/n` / `--jobs N` / `--baseline` options of the figure
/// binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardArgs {
    /// Which slice of the study grid to run (`None`: classic panel
    /// output).
    pub shard: Option<Shard>,
    /// Worker count for the sharded runner (`None`: one job).
    pub jobs: Option<usize>,
    /// Vendor baseline dividing the GPU efficiency rows (`None`: the
    /// measured default, see [`HostBaseline`]).
    pub baseline: Option<HostBaseline>,
}

impl ShardArgs {
    /// The [`HarnessArgs::try_parse_with_values`] hook consuming
    /// `--shard`/`--jobs`/`--baseline` in both `--flag value` and
    /// `--flag=value` spellings.
    ///
    /// # Errors
    ///
    /// A message naming the malformed or missing value.
    pub fn consume(
        &mut self,
        flag: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        match flag {
            "--shard" => {
                let v = next().ok_or_else(|| "--shard requires an i/n argument".to_string())?;
                self.shard = Some(Shard::parse(&v)?);
            }
            "--jobs" => {
                let v = next().ok_or_else(|| "--jobs requires a count argument".to_string())?;
                self.jobs = Some(parse_job_count(&v)?);
            }
            "--baseline" => {
                let v =
                    next().ok_or_else(|| "--baseline requires measured or modelled".to_string())?;
                self.baseline = Some(parse_baseline(&v)?);
            }
            other => {
                if let Some(v) = other.strip_prefix("--shard=") {
                    self.shard = Some(Shard::parse(v)?);
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    self.jobs = Some(parse_job_count(v)?);
                } else if let Some(v) = other.strip_prefix("--baseline=") {
                    self.baseline = Some(parse_baseline(v)?);
                } else {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Whether either sharding flag was given: selects the per-point CSV
    /// study runner instead of the human-readable panels.
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some() || self.jobs.is_some()
    }

    /// The selected shard (`0/1`, the whole grid, when only `--jobs` was
    /// given).
    pub fn shard(&self) -> Shard {
        self.shard.unwrap_or(Shard::FULL)
    }

    /// The selected job count (default one: serial on the calling
    /// thread).
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or(1).max(1)
    }

    /// The vendor baseline the GPU efficiency rows divide by: the
    /// measured simulator headroom unless `--baseline modelled` asked
    /// for the paper's naive framing.
    pub fn baseline(&self) -> HostBaseline {
        self.baseline.unwrap_or_default()
    }
}

/// Parses a figure binary's process arguments: the shared harness set
/// plus `--shard`/`--jobs`. Prints [`STUDY_USAGE`] and exits 0 for
/// `--help`, 2 for anything unrecognised or malformed.
pub fn parse_study_args() -> (HarnessArgs, ShardArgs) {
    let mut shard = ShardArgs::default();
    match HarnessArgs::try_parse_with_values(std::env::args().skip(1), |flag, next| {
        shard.consume(flag, next)
    }) {
        Ok(out) if out.help => {
            println!("{STUDY_USAGE}");
            std::process::exit(0);
        }
        Ok(out) => (out, shard),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{STUDY_USAGE}");
            std::process::exit(2);
        }
    }
}

/// A live trace session bound to its output file.
pub struct TraceOutput {
    session: perfport_trace::TraceSession,
    path: PathBuf,
}

impl TraceOutput {
    /// Stops recording and writes the Chrome `trace_event` JSON. The
    /// harness binaries treat a write failure as fatal: a requested
    /// trace that silently vanishes is worse than an error.
    pub fn finish(self) {
        let events = self.session.finish();
        let chrome = perfport_trace::export::chrome(&events);
        if let Err(e) = std::fs::write(&self.path, chrome) {
            eprintln!("failed to write trace to {}: {e}", self.path.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} trace events to {} (open in chrome://tracing or ui.perfetto.dev,\n  or summarize with: cargo run -p perfport-bench --bin trace_report -- {})",
            events.len(),
            self.path.display(),
            self.path.display()
        );
    }
}

/// The process-wide monotonic aggregates captured at a measurement
/// phase boundary: scheduler overhead totals, the tuned GEMM's
/// pack-overlap counter, and the full telemetry snapshot.
///
/// The underlying counters only grow for the process lifetime, so a
/// binary that stamps them directly over-reports whenever warm-up,
/// verification, or an earlier phase ran in the same process. Capture
/// an epoch when measurement starts and stamp the *deltas*
/// ([`sched_totals_json_since`], [`telemetry_json_since`]) instead.
pub struct TelemetryEpoch {
    sched: perfport_pool::SchedTotals,
    pack_overlap_ns: u64,
    telemetry: perfport_telemetry::Snapshot,
}

/// Captures the current aggregates as a [`TelemetryEpoch`].
pub fn telemetry_epoch() -> TelemetryEpoch {
    TelemetryEpoch {
        sched: perfport_pool::sched_totals(),
        pack_overlap_ns: perfport_gemm::tuned::pack_overlap_ns(),
        telemetry: perfport_telemetry::snapshot(),
    }
}

/// One-line JSON object summarising the run's scheduler evidence: the
/// active mode plus the aggregates the pool and the tuned GEMM
/// accumulated **since `epoch`** (`pool/barrier_wait_ns`,
/// `pool/idle_ns`, `gemm/tuned_pack_overlap_ns`). Both snapshot
/// binaries stamp this so an A/B of `--sched barrier` vs
/// `--sched graph` artifacts shows where the worker time went.
pub fn sched_totals_json_since(epoch: &TelemetryEpoch) -> String {
    let totals = perfport_pool::sched_totals().delta_since(epoch.sched);
    format!(
        "{{\"mode\": \"{}\", \"barrier_wait_ns\": {}, \"idle_ns\": {}, \"pack_overlap_ns\": {}}}",
        perfport_pool::sched::active().name(),
        totals.barrier_wait_ns,
        totals.idle_ns,
        perfport_gemm::tuned::pack_overlap_ns().saturating_sub(epoch.pack_overlap_ns)
    )
}

/// The merged telemetry recorded since `epoch`, serialized as the
/// snapshot `telemetry` block (see [`perfport_telemetry::Snapshot::to_json`]).
pub fn telemetry_json_since(epoch: &TelemetryEpoch, indent: &str) -> String {
    perfport_telemetry::snapshot()
        .delta_since(&epoch.telemetry)
        .to_json(indent)
}

/// [`sched_totals_json_since`] from process start (a zero epoch) — the
/// process-lifetime totals, kept for callers without a phase boundary.
pub fn sched_totals_json() -> String {
    let totals = perfport_pool::sched_totals();
    format!(
        "{{\"mode\": \"{}\", \"barrier_wait_ns\": {}, \"idle_ns\": {}, \"pack_overlap_ns\": {}}}",
        perfport_pool::sched::active().name(),
        totals.barrier_wait_ns,
        totals.idle_ns,
        perfport_gemm::tuned::pack_overlap_ns()
    )
}

fn parse_thread_count(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("invalid thread count '{s}'")),
    }
}

fn parse_job_count(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("invalid job count '{s}'")),
    }
}

fn parse_baseline(s: &str) -> Result<HostBaseline, String> {
    match s {
        "measured" => Ok(HostBaseline::MeasuredTuned),
        "modelled" | "modeled" => Ok(HostBaseline::NaiveModel),
        other => Err(format!(
            "invalid baseline '{other}' (expected measured or modelled)"
        )),
    }
}

/// Finds a registered figure spec by id.
///
/// # Panics
///
/// Panics for unknown ids.
pub fn spec(id: &str) -> FigureSpec {
    figure_specs()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown figure id {id}"))
}

/// Runs the panels the way the figure binaries do: classic tables when
/// no sharding flag was given, the sharded per-point CSV study runner
/// otherwise.
///
/// In sharded mode the CSV header is emitted by shard 0 only, so
/// concatenating the stdout of shards `0/n..n-1/n` in index order is
/// byte-identical to the `--shard 0/1` artifact; the shard/jobs identity
/// goes to stderr and into the `--trace` manifest, never stdout.
pub fn print_study(ids: &[&str], args: &HarnessArgs, study: &ShardArgs) {
    if !study.is_sharded() {
        return print_panels_with(ids, args, study.baseline());
    }
    args.apply_sched();
    args.start_profiling();
    let shard = study.shard();
    let jobs = study.jobs();
    let trace = args.start_trace_with(|m| {
        m.shard = Some(shard.to_string());
        m.jobs = Some(jobs);
        // The sharded CSV is raw per-point throughput — the baseline
        // never touches it — but the manifest still records which
        // framing a panel run with the same flags would have divided by.
        m.baseline = Some(study.baseline().label().to_string());
    });
    let cfg = args.config();
    let total = study_grid(ids, &cfg).len();
    let results = run_study_sharded(ids, &cfg, shard, jobs);
    print!("{}", render_study_csv(&results, shard.index == 0));
    eprintln!(
        "shard {shard}: ran {} of {total} grid points across {jobs} job(s)",
        results.len()
    );
    if let Some(trace) = trace {
        trace.finish();
    }
}

/// Runs the panels and prints them (plus CSV when requested) against
/// the default measured vendor baseline.
pub fn print_panels(ids: &[&str], args: &HarnessArgs) {
    print_panels_with(ids, args, HostBaseline::default())
}

/// [`print_panels`] with an explicit vendor baseline: GPU panels are
/// followed by a per-size efficiency block dividing every curve by the
/// vendor reference times the committed headroom (measured on the
/// gpusim simulator, `BENCH_gpu.json`) — or by the naive modelled
/// reference alone under `--baseline modelled`, labeled as such.
pub fn print_panels_with(ids: &[&str], args: &HarnessArgs, baseline: HostBaseline) {
    args.apply_sched();
    args.start_profiling();
    let trace = args.start_trace_with(|m| {
        m.baseline = Some(baseline.label().to_string());
    });
    let cfg = args.config();
    for id in ids {
        let spec = spec(id);
        let rows = spec.run(&cfg);
        println!("== {} ==", spec.id);
        println!("{}", render_figure(spec.title, &rows));
        if args.csv {
            println!("-- {} csv --", spec.id);
            println!("{}", render_csv(&rows));
        }
        if spec.arch.is_gpu() {
            if let Some(eff) = figure_efficiency(&spec, &cfg, baseline) {
                println!("{}", render_efficiency(&eff));
                if args.csv {
                    println!("-- {} efficiency csv --", spec.id);
                    println!("{}", render_efficiency_csv(&eff));
                }
            }
        }
    }
    if let Some(trace) = trace {
        trace.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> HarnessArgs {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string())).expect("args must parse")
    }

    fn parse_err(args: &[&str]) -> String {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
            .expect_err("args must be rejected")
    }

    #[test]
    fn arg_parsing() {
        let a = parse_ok(&["--quick", "--csv"]);
        assert!(a.quick && a.csv);
        assert!(a.trace.is_none() && a.threads.is_none() && !a.help);
        let b = parse_ok(&[]);
        assert!(!b.quick && !b.csv);
        assert_eq!(b.config().gpu_sizes.len(), 9);
        assert_eq!(a.config().gpu_sizes.len(), 2);
        assert!(parse_ok(&["--help"]).help);
        assert!(parse_ok(&["-h"]).help);
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        // The satellite contract: a typo'd flag must not be silently
        // ignored (HarnessArgs::parse turns these into usage + exit 2).
        assert!(parse_err(&["--qiuck"]).contains("--qiuck"));
        assert!(parse_err(&["--quick", "--frobnicate"]).contains("--frobnicate"));
        assert!(parse_err(&["stray"]).contains("stray"));
        assert!(USAGE.contains("--quick") && USAGE.contains("--threads"));
    }

    #[test]
    fn threads_flag_takes_a_count() {
        assert_eq!(parse_ok(&["--threads", "8"]).threads, Some(8));
        assert_eq!(parse_ok(&["--threads=3", "--quick"]).threads, Some(3));
        assert_eq!(parse_ok(&["--threads", "8"]).thread_count(), 8);
        // Default: every core the OS reports (always at least one).
        assert!(parse_ok(&[]).thread_count() >= 1);
        assert!(parse_err(&["--threads"]).contains("count"));
        assert!(parse_err(&["--threads", "zero"]).contains("zero"));
        assert!(parse_err(&["--threads=0"]).contains('0'));
        let pool = parse_ok(&["--threads", "3"]).make_pool();
        assert_eq!(pool.num_threads(), 3);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let a = parse_ok(&["--trace", "/tmp/x.trace"]);
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/x.trace"))
        );
        let b = parse_ok(&["--trace=/tmp/y.trace", "--quick"]);
        assert_eq!(
            b.trace.as_deref(),
            Some(std::path::Path::new("/tmp/y.trace"))
        );
        assert!(b.quick);
        // A dangling --trace is now a hard error, like any malformed flag.
        assert!(parse_err(&["--trace"]).contains("path"));
    }

    #[test]
    fn sched_flag_parses_in_both_spellings() {
        use perfport_pool::SchedMode;
        assert_eq!(
            parse_ok(&["--sched", "barrier"]).sched,
            Some(SchedMode::Barrier)
        );
        assert_eq!(parse_ok(&["--sched=graph"]).sched, Some(SchedMode::Graph));
        // "auto" is an explicit request for the default.
        assert_eq!(parse_ok(&["--sched", "auto"]).sched, Some(SchedMode::Graph));
        assert_eq!(parse_ok(&[]).sched, None);
        assert!(parse_err(&["--sched"]).contains("mode"));
        let err = parse_err(&["--sched", "workstealing"]);
        assert!(err.contains("workstealing") && err.contains("barrier"));
        assert!(USAGE.contains("--sched") && STUDY_USAGE.contains("--sched"));
    }

    #[test]
    fn profile_flag_parses_everywhere() {
        assert!(parse_ok(&["--profile"]).profile);
        assert!(!parse_ok(&[]).profile);
        let a = parse_ok(&["--quick", "--profile", "--threads", "2"]);
        assert!(a.profile && a.quick);
        assert!(USAGE.contains("--profile"));
    }

    #[test]
    fn extra_flags_extend_but_do_not_weaken_rejection() {
        let mut measured = false;
        let a = HarnessArgs::try_parse_with(
            ["--quick", "--measured"].iter().map(|s| s.to_string()),
            |f| {
                if f == "--measured" {
                    measured = true;
                    true
                } else {
                    false
                }
            },
        )
        .unwrap();
        assert!(a.quick && measured);
        // Anything the hook declines is still a hard error.
        let err =
            HarnessArgs::try_parse_with(["--frobnicate"].iter().map(|s| s.to_string()), |f| {
                f == "--measured"
            })
            .unwrap_err();
        assert!(err.contains("--frobnicate"));
    }

    fn parse_study(args: &[&str]) -> Result<(HarnessArgs, ShardArgs), String> {
        let mut shard = ShardArgs::default();
        let out = HarnessArgs::try_parse_with_values(
            args.iter().map(|s| s.to_string()),
            |flag, next| shard.consume(flag, next),
        )?;
        Ok((out, shard))
    }

    #[test]
    fn shard_flags_parse_in_both_spellings() {
        let (a, s) = parse_study(&["--quick", "--shard", "1/4", "--jobs", "3"]).unwrap();
        assert!(a.quick);
        assert_eq!(s.shard, Some(Shard { index: 1, count: 4 }));
        assert_eq!(s.jobs, Some(3));
        let (_, s) = parse_study(&["--shard=0/2", "--jobs=2"]).unwrap();
        assert_eq!(s.shard(), Shard { index: 0, count: 2 });
        assert_eq!(s.jobs(), 2);
        assert!(s.is_sharded());
    }

    #[test]
    fn shard_defaults_cover_the_whole_grid_serially() {
        let (_, s) = parse_study(&["--quick"]).unwrap();
        assert!(!s.is_sharded());
        assert_eq!(s.shard(), Shard::FULL);
        assert_eq!(s.jobs(), 1);
        // --jobs alone still selects the sharded CSV path over shard 0/1.
        let (_, s) = parse_study(&["--jobs", "2"]).unwrap();
        assert!(s.is_sharded());
        assert_eq!(s.shard(), Shard::FULL);
    }

    #[test]
    fn baseline_flag_selects_the_vendor_framing() {
        // Default: the measured simulator/host headroom divides the rows.
        let (_, s) = parse_study(&["--quick"]).unwrap();
        assert_eq!(s.baseline, None);
        assert_eq!(s.baseline(), HostBaseline::MeasuredTuned);
        let (_, s) = parse_study(&["--baseline", "modelled"]).unwrap();
        assert_eq!(s.baseline(), HostBaseline::NaiveModel);
        let (_, s) = parse_study(&["--baseline=measured", "--quick"]).unwrap();
        assert_eq!(s.baseline(), HostBaseline::MeasuredTuned);
        // The single-l American spelling is accepted too.
        let (_, s) = parse_study(&["--baseline=modeled"]).unwrap();
        assert_eq!(s.baseline(), HostBaseline::NaiveModel);
        let err = parse_study(&["--baseline", "vibes"]).unwrap_err();
        assert!(err.contains("vibes") && err.contains("measured"));
        assert!(parse_study(&["--baseline"])
            .unwrap_err()
            .contains("measured or modelled"));
        assert!(STUDY_USAGE.contains("--baseline"));
    }

    #[test]
    fn malformed_shard_flags_are_hard_errors() {
        assert!(parse_study(&["--shard"]).unwrap_err().contains("i/n"));
        assert!(parse_study(&["--shard", "2/2"])
            .unwrap_err()
            .contains("2/2"));
        assert!(parse_study(&["--shard=banana"])
            .unwrap_err()
            .contains("banana"));
        assert!(parse_study(&["--jobs"]).unwrap_err().contains("count"));
        assert!(parse_study(&["--jobs", "0"]).unwrap_err().contains('0'));
        assert!(parse_study(&["--jobs=none"]).unwrap_err().contains("none"));
        // The hook leaves genuinely unknown flags to the shared rejection.
        assert!(parse_study(&["--shards", "0/2"])
            .unwrap_err()
            .contains("--shards"));
        assert!(STUDY_USAGE.contains("--shard") && STUDY_USAGE.contains("--jobs"));
    }

    #[test]
    fn value_taking_hook_reports_its_own_errors() {
        let err = HarnessArgs::try_parse_with_values(
            ["--custom"].iter().map(|s| s.to_string()),
            |flag, next| {
                if flag == "--custom" {
                    next().ok_or_else(|| "--custom requires a value".to_string())?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            },
        )
        .unwrap_err();
        assert!(err.contains("--custom requires a value"));
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("fig4a").id, "fig4a");
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_spec_panics() {
        let _ = spec("fig9z");
    }
}
