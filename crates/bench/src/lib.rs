//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary accepts `--quick` (reduced sweep for smoke testing) and
//! `--csv` (machine-readable output next to the human-readable table).

use perfport_core::{figure_specs, render_csv, render_figure, FigureSpec, StudyConfig};

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarnessArgs {
    /// Reduced sweep.
    pub quick: bool,
    /// Also print CSV blocks.
    pub csv: bool,
}

impl HarnessArgs {
    /// Parses the arguments every binary supports.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        for a in args {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--help" | "-h" => {
                    eprintln!("usage: [--quick] [--csv]");
                }
                _ => {}
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The study configuration these arguments select.
    pub fn config(&self) -> StudyConfig {
        if self.quick {
            StudyConfig::quick()
        } else {
            StudyConfig::default()
        }
    }
}

/// Finds a registered figure spec by id.
///
/// # Panics
///
/// Panics for unknown ids.
pub fn spec(id: &str) -> FigureSpec {
    figure_specs()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown figure id {id}"))
}

/// Runs the panels and prints them (plus CSV when requested).
pub fn print_panels(ids: &[&str], args: &HarnessArgs) {
    let cfg = args.config();
    for id in ids {
        let spec = spec(id);
        let rows = spec.run(&cfg);
        println!("== {} ==", spec.id);
        println!("{}", render_figure(spec.title, &rows));
        if args.csv {
            println!("-- {} csv --", spec.id);
            println!("{}", render_csv(&rows));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let a = HarnessArgs::parse(vec!["--quick".to_string(), "--csv".to_string()]);
        assert!(a.quick && a.csv);
        let b = HarnessArgs::parse(Vec::<String>::new());
        assert!(!b.quick && !b.csv);
        assert_eq!(b.config().gpu_sizes.len(), 9);
        assert_eq!(a.config().gpu_sizes.len(), 2);
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("fig4a").id, "fig4a");
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_spec_panics() {
        let _ = spec("fig9z");
    }
}
