//! Point-by-point comparison of two `BENCH_gemm.json` snapshots with
//! noise-aware thresholds — the regression sentinel behind the
//! `bench_diff` binary.
//!
//! A bench point is only as trustworthy as its repetition spread, so the
//! tolerance for each `(n, precision, variant)` cell is derived from the
//! *committed* spreads rather than a blanket percentage: a cell whose
//! reps scattered ±8% must not fail CI on a 6% dip, while a rock-steady
//! cell should. Cells with no spread evidence at all (schema `/1` files,
//! single-rep runs) fall back to the blanket [`SPREADLESS_FLOOR`].

use perfport_trace::json::{self, Json};
use std::collections::BTreeMap;

/// What kind of workload a snapshot records. Snapshots of different
/// kinds measure incommensurable things (host GFLOP/s vs. reciprocal
/// latencies vs. simulator throughput), so `bench_diff` refuses to
/// compare across kinds instead of silently finding zero shared cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// `perfport-bench-gemm/*` — host GEMM rates (`BENCH_gemm.json`).
    Gemm,
    /// `perfport-bench-serve/*` — serving latencies (`BENCH_serve.json`).
    Serve,
    /// `perfport-bench-gpu/*` — simulated GPU kernels (`BENCH_gpu.json`).
    Gpu,
}

impl SnapshotKind {
    /// Human label used in refusal messages.
    pub fn describe(self) -> &'static str {
        match self {
            SnapshotKind::Gemm => "host GEMM",
            SnapshotKind::Serve => "serving latency",
            SnapshotKind::Gpu => "GPU simulator",
        }
    }
}

/// One `(n, precision)` bench point: GFLOP/s per variant plus the
/// relative rep spread (half-range over mean) per variant when the
/// snapshot recorded it (schema `/2`).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPoint {
    /// Matrix dimension.
    pub n: u64,
    /// `"FP64"` / `"FP32"`.
    pub precision: String,
    /// Variant name → measured GFLOP/s.
    pub gflops: BTreeMap<String, f64>,
    /// Variant name → relative rep spread (0.04 = ±4%); empty for `/1`.
    pub spread: BTreeMap<String, f64>,
}

impl SnapshotPoint {
    /// The `(n, precision)` identity used to match points across files.
    pub fn key(&self) -> (u64, String) {
        (self.n, self.precision.clone())
    }
}

/// A parsed bench snapshot (either schema version).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The `schema` string, e.g. `perfport-bench-gemm/2`.
    pub schema: String,
    /// Workload family, derived from the schema prefix.
    pub kind: SnapshotKind,
    /// Whether the producing run was `--quick`.
    pub quick: bool,
    /// SIMD ISA the producing run's tuned kernel dispatched to, from the
    /// embedded manifest's `simd_isa` field (`/2` snapshots produced
    /// since the dispatcher landed); `None` for older files.
    pub simd_isa: Option<String>,
    /// Scheduler discipline of the producing run (`"barrier"` /
    /// `"graph"`), from the embedded manifest's `sched` field; `None`
    /// for files that predate the scheduler dispatch.
    pub sched: Option<String>,
    /// The run's always-on runtime telemetry (schema `gemm/3` and
    /// `serve/2` snapshots), parsed leniently: telemetry is supporting
    /// evidence, never a gated metric, so a missing or malformed block
    /// reads as `None` rather than failing the diff.
    pub telemetry: Option<perfport_telemetry::Snapshot>,
    /// All recorded points, in file order.
    pub points: Vec<SnapshotPoint>,
}

/// Fields of a `/1` point object that are not variant measurements.
const V1_META_KEYS: [&str; 4] = ["n", "precision", "best_naive", "vendor_over_naive"];

fn parse_point(obj: &Json) -> Result<SnapshotPoint, String> {
    let n = obj
        .get("n")
        .and_then(Json::as_f64)
        .ok_or("point missing numeric 'n'")? as u64;
    let precision = obj
        .get("precision")
        .and_then(Json::as_str)
        .ok_or("point missing 'precision'")?
        .to_string();
    let mut gflops = BTreeMap::new();
    let mut spread = BTreeMap::new();
    match obj.get("gflops") {
        // Schema /2: nested objects.
        Some(Json::Object(map)) => {
            for (k, v) in map {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("gflops.{k} not a number"))?;
                gflops.insert(k.clone(), v);
            }
            if let Some(Json::Object(map)) = obj.get("spread") {
                for (k, v) in map {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("spread.{k} not a number"))?;
                    spread.insert(k.clone(), v);
                }
            }
        }
        Some(_) => return Err("'gflops' must be an object".to_string()),
        // Schema /1: variant rates are flat numeric fields on the point.
        None => {
            if let Json::Object(map) = obj {
                for (k, v) in map {
                    if V1_META_KEYS.contains(&k.as_str()) {
                        continue;
                    }
                    if let Some(v) = v.as_f64() {
                        gflops.insert(k.clone(), v);
                    }
                }
            }
        }
    }
    if gflops.is_empty() {
        return Err(format!("point n={n} {precision} has no measurements"));
    }
    Ok(SnapshotPoint {
        n,
        precision,
        gflops,
        spread,
    })
}

/// Parses a snapshot's optional `telemetry` block back into a
/// [`perfport_telemetry::Snapshot`]. Any structural surprise — missing
/// sub-map, non-numeric value, out-of-range bucket index — yields
/// `None` for the whole block: older snapshots and hand-edited files
/// must keep diffing on their measured points.
fn parse_telemetry(doc: &Json) -> Option<perfport_telemetry::Snapshot> {
    let block = doc.get("telemetry")?;
    let mut snap = perfport_telemetry::Snapshot::default();
    let Some(Json::Object(counters)) = block.get("counters") else {
        return None;
    };
    for (k, v) in counters {
        snap.counters.insert(k.clone(), v.as_f64()? as u64);
    }
    let Some(Json::Object(gauges)) = block.get("gauges") else {
        return None;
    };
    for (k, v) in gauges {
        snap.gauges.insert(k.clone(), v.as_f64()? as u64);
    }
    let Some(Json::Object(histograms)) = block.get("histograms") else {
        return None;
    };
    for (k, h) in histograms {
        let mut hist = perfport_telemetry::HistogramSnapshot::empty();
        hist.count = h.get("count")?.as_f64()? as u64;
        hist.sum = h.get("sum")?.as_f64()? as u64;
        for entry in h.get("buckets")?.as_array()? {
            let pair = entry.as_array()?;
            let index = pair.first()?.as_f64()? as usize;
            let count = pair.get(1)?.as_f64()? as u64;
            *hist.buckets.get_mut(index)? = count;
        }
        snap.histograms.insert(k.clone(), hist);
    }
    Some(snap)
}

/// Maps a `perfport-bench-serve/*` document onto one synthetic
/// [`SnapshotPoint`] so the existing higher-is-better diff engine gates
/// serving runs too: `n` is the request count, the precision label is
/// `"SERVE"`, and the latency percentiles enter as reciprocals
/// (`inv_p50_ms` = 1/p50, so a latency regression reads as a metric
/// drop) alongside `sustained_gflops` and `req_per_s`.
fn parse_serve(
    doc: &Json,
    schema: String,
    quick: bool,
    simd_isa: Option<String>,
    sched: Option<String>,
    telemetry: Option<perfport_telemetry::Snapshot>,
) -> Result<Snapshot, String> {
    let requests = doc
        .get("workload")
        .and_then(|w| w.get("requests"))
        .and_then(Json::as_f64)
        .ok_or("serve snapshot missing numeric 'workload.requests'")? as u64;
    let lat = doc
        .get("latency_ms")
        .ok_or("serve snapshot missing 'latency_ms'")?;
    let mut gflops = BTreeMap::new();
    for (field, metric) in [
        ("p50", "inv_p50_ms"),
        ("p95", "inv_p95_ms"),
        ("p99", "inv_p99_ms"),
    ] {
        let v = lat
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("serve snapshot missing numeric 'latency_ms.{field}'"))?;
        if v > 0.0 {
            gflops.insert(metric.to_string(), 1.0 / v);
        }
    }
    for field in ["sustained_gflops", "req_per_s"] {
        let v = doc
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("serve snapshot missing numeric '{field}'"))?;
        gflops.insert(field.to_string(), v);
    }
    Ok(Snapshot {
        schema,
        kind: SnapshotKind::Serve,
        quick,
        simd_isa,
        sched,
        telemetry,
        points: vec![SnapshotPoint {
            n: requests,
            precision: "SERVE".to_string(),
            gflops,
            spread: BTreeMap::new(),
        }],
    })
}

/// Parses a snapshot: any `perfport-bench-gemm/*` version, a
/// `perfport-bench-gpu/*` simulator run (same points shape), or a
/// `perfport-bench-serve/*` serving run (mapped to one synthetic point
/// whose latencies enter reciprocally, so increases read as drops).
/// The `telemetry` block carried by `gemm/3` / `serve/2` / `gpu/1`
/// snapshots is parsed warn-only into [`Snapshot::telemetry`].
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?
        .to_string();
    let quick = doc.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let simd_isa = doc
        .get("manifest")
        .and_then(|m| m.get("simd_isa"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let sched = doc
        .get("manifest")
        .and_then(|m| m.get("sched"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let telemetry = parse_telemetry(&doc);
    if schema.starts_with("perfport-bench-serve/") {
        return parse_serve(&doc, schema, quick, simd_isa, sched, telemetry);
    }
    let kind = if schema.starts_with("perfport-bench-gemm/") {
        SnapshotKind::Gemm
    } else if schema.starts_with("perfport-bench-gpu/") {
        SnapshotKind::Gpu
    } else {
        return Err(format!("not a bench snapshot: schema '{schema}'"));
    };
    let points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or("missing 'points' array")?
        .iter()
        .map(parse_point)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Snapshot {
        schema,
        kind,
        quick,
        simd_isa,
        sched,
        telemetry,
        points,
    })
}

/// Blanket relative tolerance for cells with **no** spread evidence in
/// either snapshot (schema `/1` files, single-rep runs, hand-edited
/// zeros). Without it, `--floor 0` plus an evidence-free cell makes the
/// noise-aware gate infinitely strict — any dip fails. The documented 5%
/// blanket applies instead; an explicitly configured floor above it
/// still wins.
pub const SPREADLESS_FLOOR: f64 = 0.05;

/// Threshold policy for [`diff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Minimum relative tolerance applied to every cell (default 5%),
    /// covering run-to-run noise the committed spread cannot see
    /// (different machine load, frequency scaling).
    pub floor: f64,
    /// Multiplier on the summed rep spreads of the two snapshots; the
    /// effective threshold is `max(floor, factor × (spread_a + spread_b))`.
    pub spread_factor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            floor: 0.05,
            spread_factor: 2.0,
        }
    }
}

/// The verdict for one compared cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise threshold either way.
    Ok,
    /// Faster than the baseline by more than the threshold.
    Improved,
    /// Slower than the baseline by more than the threshold.
    Regressed,
}

/// One compared `(n, precision, variant)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Matrix dimension.
    pub n: u64,
    /// Precision label.
    pub precision: String,
    /// Variant name.
    pub variant: String,
    /// Baseline GFLOP/s.
    pub base: f64,
    /// Candidate GFLOP/s.
    pub cand: f64,
    /// `cand / base - 1`.
    pub rel_change: f64,
    /// The noise-aware tolerance applied to this cell.
    pub threshold: f64,
    /// The outcome.
    pub verdict: Verdict,
}

/// Compares every `(n, precision, variant)` present in **both**
/// snapshots (a `--quick` candidate naturally compares only its subset).
/// Entries come back in baseline file order.
pub fn diff(base: &Snapshot, cand: &Snapshot, cfg: &DiffConfig) -> Vec<DiffEntry> {
    let cand_by_key: BTreeMap<(u64, String), &SnapshotPoint> =
        cand.points.iter().map(|p| (p.key(), p)).collect();
    let mut out = Vec::new();
    for bp in &base.points {
        let Some(cp) = cand_by_key.get(&bp.key()) else {
            continue;
        };
        for (variant, &b) in &bp.gflops {
            let Some(&c) = cp.gflops.get(variant) else {
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            let spread_sum = bp.spread.get(variant).copied().unwrap_or(0.0)
                + cp.spread.get(variant).copied().unwrap_or(0.0);
            let mut threshold = (cfg.spread_factor * spread_sum).max(cfg.floor);
            if spread_sum <= 0.0 {
                // No noise evidence on either side: the documented
                // blanket percentage, not an infinitely strict gate.
                threshold = threshold.max(SPREADLESS_FLOOR);
            }
            let rel_change = c / b - 1.0;
            let verdict = if rel_change < -threshold {
                Verdict::Regressed
            } else if rel_change > threshold {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            out.push(DiffEntry {
                n: bp.n,
                precision: bp.precision.clone(),
                variant: variant.clone(),
                base: b,
                cand: c,
                rel_change,
                threshold,
                verdict,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1: &str = r#"{
      "schema": "perfport-bench-gemm/1",
      "quick": false,
      "points": [
        {"n": 1024, "precision": "FP64", "c-openmp": 5.0, "julia": 4.0,
         "vendor": 9.0, "best_naive": "c-openmp", "vendor_over_naive": 1.8}
      ]
    }"#;

    const V2: &str = r#"{
      "schema": "perfport-bench-gemm/2",
      "quick": true,
      "points": [
        {"n": 1024, "precision": "FP64",
         "gflops": {"c-openmp": 5.0, "julia": 4.0, "vendor": 9.0},
         "spread": {"c-openmp": 0.01, "julia": 0.08, "vendor": 0.01}}
      ]
    }"#;

    #[test]
    fn parses_both_schema_versions() {
        let v1 = parse_snapshot(V1).unwrap();
        assert_eq!(v1.schema, "perfport-bench-gemm/1");
        assert_eq!(v1.points.len(), 1);
        assert_eq!(v1.points[0].gflops["vendor"], 9.0);
        assert!(v1.points[0].spread.is_empty());
        // /1 meta fields must not be mistaken for variants.
        assert!(!v1.points[0].gflops.contains_key("vendor_over_naive"));

        let v2 = parse_snapshot(V2).unwrap();
        assert!(v2.quick);
        assert_eq!(v2.points[0].gflops["julia"], 4.0);
        assert_eq!(v2.points[0].spread["julia"], 0.08);
    }

    #[test]
    fn simd_isa_is_read_from_the_manifest_when_present() {
        assert_eq!(parse_snapshot(V2).unwrap().simd_isa, None);
        let with_manifest = V2.replacen(
            "\"quick\": true,",
            "\"quick\": true,\n      \"manifest\": {\"schema\": \"perfport-manifest/1\", \"simd_isa\": \"avx512\"},",
            1,
        );
        let snap = parse_snapshot(&with_manifest).unwrap();
        assert_eq!(snap.simd_isa.as_deref(), Some("avx512"));
    }

    #[test]
    fn sched_is_read_from_the_manifest_when_present() {
        // Pre-scheduler snapshots carry no sched field: None, not an error.
        assert_eq!(parse_snapshot(V2).unwrap().sched, None);
        let with_manifest = V2.replacen(
            "\"quick\": true,",
            "\"quick\": true,\n      \"manifest\": {\"schema\": \"perfport-manifest/1\", \"simd_isa\": \"avx2\", \"sched\": \"graph\"},",
            1,
        );
        let snap = parse_snapshot(&with_manifest).unwrap();
        assert_eq!(snap.sched.as_deref(), Some("graph"));
        let serve = SERVE.replacen(
            "\"simd_isa\": \"avx2\"",
            "\"simd_isa\": \"avx2\", \"sched\": \"barrier\"",
            1,
        );
        assert_eq!(
            parse_snapshot(&serve).unwrap().sched.as_deref(),
            Some("barrier")
        );
    }

    const SERVE: &str = r#"{
      "schema": "perfport-bench-serve/1",
      "quick": true,
      "seed": 42,
      "manifest": {"schema": "perfport-manifest/1", "simd_isa": "avx2"},
      "workload": {"requests": 256, "batches": 8, "batch_max": 32, "rate_req_per_s": 2000.0},
      "latency_ms": {"p50": 2.0, "p95": 5.0, "p99": 10.0, "mean": 2.5, "max": 12.0},
      "sustained_gflops": 6.25,
      "req_per_s": 1800.0
    }"#;

    #[test]
    fn serve_snapshots_map_to_one_reciprocal_latency_point() {
        let snap = parse_snapshot(SERVE).unwrap();
        assert_eq!(snap.schema, "perfport-bench-serve/1");
        assert!(snap.quick);
        assert_eq!(snap.simd_isa.as_deref(), Some("avx2"));
        assert_eq!(snap.points.len(), 1);
        let p = &snap.points[0];
        assert_eq!(p.n, 256);
        assert_eq!(p.precision, "SERVE");
        assert_eq!(p.gflops["sustained_gflops"], 6.25);
        assert_eq!(p.gflops["req_per_s"], 1800.0);
        // Latency enters reciprocally, so "higher is better" holds.
        assert!((p.gflops["inv_p50_ms"] - 0.5).abs() < 1e-12);
        assert!((p.gflops["inv_p99_ms"] - 0.1).abs() < 1e-12);
        assert!(p.spread.is_empty());
    }

    #[test]
    fn serve_latency_regressions_are_detected() {
        let base = parse_snapshot(SERVE).unwrap();
        // p99 doubles (10 ms -> 20 ms): inv_p99_ms halves, well past the
        // 5% floor.
        let cand = parse_snapshot(&SERVE.replacen("\"p99\": 10.0", "\"p99\": 20.0", 1)).unwrap();
        let entries = diff(&base, &cand, &DiffConfig::default());
        let p99 = entries.iter().find(|e| e.variant == "inv_p99_ms").unwrap();
        assert_eq!(p99.verdict, Verdict::Regressed);
        let p50 = entries.iter().find(|e| e.variant == "inv_p50_ms").unwrap();
        assert_eq!(p50.verdict, Verdict::Ok);
    }

    #[test]
    fn malformed_serve_snapshots_name_the_missing_field() {
        let no_lat = SERVE.replacen("\"latency_ms\"", "\"latency\"", 1);
        assert!(parse_snapshot(&no_lat).unwrap_err().contains("latency_ms"));
        let no_gflops = SERVE.replacen("\"sustained_gflops\"", "\"gflops\"", 1);
        assert!(parse_snapshot(&no_gflops)
            .unwrap_err()
            .contains("sustained_gflops"));
        let no_req = SERVE.replacen("\"requests\": 256,", "", 1);
        assert!(parse_snapshot(&no_req)
            .unwrap_err()
            .contains("workload.requests"));
    }

    const TELEMETRY: &str = r#""telemetry": {
        "counters": {"pool/regions": 12},
        "gauges": {"queue/depth": 3},
        "histograms": {"serve/latency_ns": {"count": 2, "sum": 3000, "p50": 2047, "p95": 2047, "p99": 2047, "buckets": [[10, 2]]}}
      },"#;

    fn with_block(block: &str) -> String {
        V2.replacen(
            "\"quick\": true,",
            &format!("\"quick\": true,\n      {block}"),
            1,
        )
    }

    #[test]
    fn telemetry_blocks_parse_into_snapshots() {
        // Snapshots without the block (schema /1 and /2 files) read None.
        assert!(parse_snapshot(V2).unwrap().telemetry.is_none());
        let snap = parse_snapshot(&with_block(TELEMETRY)).unwrap();
        let t = snap.telemetry.expect("well-formed telemetry must parse");
        assert_eq!(t.counters["pool/regions"], 12);
        assert_eq!(t.gauges["queue/depth"], 3);
        let h = &t.histograms["serve/latency_ns"];
        assert_eq!((h.count, h.sum, h.buckets[10]), (2, 3000, 2));
    }

    #[test]
    fn malformed_telemetry_is_warn_only_never_an_error() {
        for bad in [
            // counters is not an object
            r#""telemetry": {"counters": 5, "gauges": {}, "histograms": {}},"#,
            // non-numeric histogram count
            r#""telemetry": {"counters": {}, "gauges": {}, "histograms": {"h": {"count": "x", "sum": 0, "buckets": []}}},"#,
            // bucket index past the 64-bucket range
            r#""telemetry": {"counters": {}, "gauges": {}, "histograms": {"h": {"count": 1, "sum": 2, "buckets": [[99, 1]]}}},"#,
        ] {
            let snap = parse_snapshot(&with_block(bad)).expect("points must still parse");
            assert!(snap.telemetry.is_none(), "must read as None: {bad}");
            assert_eq!(snap.points.len(), 1);
        }
    }

    #[test]
    fn rejects_non_snapshots() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("{\"schema\": \"perfport-trace/1\"}").is_err());
        assert!(parse_snapshot("{\"schema\": \"perfport-bench-gemm/2\"}").is_err());
        assert!(parse_snapshot("not json").is_err());
    }

    fn with_vendor(text: &str, vendor: f64) -> Snapshot {
        let mut snap = parse_snapshot(text).unwrap();
        snap.points[0].gflops.insert("vendor".to_string(), vendor);
        snap
    }

    #[test]
    fn ten_percent_regression_is_detected() {
        let base = parse_snapshot(V2).unwrap();
        // vendor: 9.0 -> 8.1 is -10%; spreads are ±1%, threshold
        // max(0.05, 2·0.02) = 5% -> regression.
        let cand = with_vendor(V2, 8.1);
        let entries = diff(&base, &cand, &DiffConfig::default());
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert_eq!(vendor.verdict, Verdict::Regressed);
        assert!((vendor.rel_change + 0.10).abs() < 1e-9);
    }

    #[test]
    fn noisy_cells_get_wider_thresholds() {
        let base = parse_snapshot(V2).unwrap();
        // julia scattered ±8% in both runs: threshold 2·0.16 = 32%, so a
        // 10% dip is noise, not a regression.
        let mut cand = parse_snapshot(V2).unwrap();
        cand.points[0].gflops.insert("julia".to_string(), 3.6);
        let entries = diff(&base, &cand, &DiffConfig::default());
        let julia = entries.iter().find(|e| e.variant == "julia").unwrap();
        assert_eq!(julia.verdict, Verdict::Ok);
        assert!(julia.threshold > 0.3);
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let base = parse_snapshot(V2).unwrap();
        let cand = with_vendor(V2, 12.0);
        let entries = diff(&base, &cand, &DiffConfig::default());
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert_eq!(vendor.verdict, Verdict::Improved);
    }

    #[test]
    fn quick_candidates_compare_only_shared_points() {
        let mut base = parse_snapshot(V2).unwrap();
        base.points.push(SnapshotPoint {
            n: 2048,
            precision: "FP64".to_string(),
            gflops: [("vendor".to_string(), 8.0)].into_iter().collect(),
            spread: BTreeMap::new(),
        });
        let cand = parse_snapshot(V2).unwrap();
        let entries = diff(&base, &cand, &DiffConfig::default());
        assert!(entries.iter().all(|e| e.n == 1024));
    }

    #[test]
    fn v1_baselines_use_the_floor() {
        let base = parse_snapshot(V1).unwrap();
        let cand = with_vendor(V1, 8.1); // -10% with no recorded spread
        let entries = diff(&base, &cand, &DiffConfig::default());
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert!((vendor.threshold - 0.05).abs() < 1e-12);
        assert_eq!(vendor.verdict, Verdict::Regressed);
    }

    #[test]
    fn spreadless_cells_get_the_blanket_floor_even_at_floor_zero() {
        // A /1-era baseline has no spread evidence; with `--floor 0` the
        // old threshold was exactly 0, so *any* dip failed. The blanket
        // percentage must apply instead.
        let zero_floor = DiffConfig {
            floor: 0.0,
            spread_factor: 2.0,
        };
        let base = parse_snapshot(V1).unwrap();
        let cand = with_vendor(V1, 8.73); // -3%: within the 5% blanket
        let entries = diff(&base, &cand, &zero_floor);
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert!((vendor.threshold - SPREADLESS_FLOOR).abs() < 1e-12);
        assert_eq!(vendor.verdict, Verdict::Ok);
        // Past the blanket it still regresses.
        let cand = with_vendor(V1, 8.1); // -10%
        let entries = diff(&base, &cand, &zero_floor);
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert_eq!(vendor.verdict, Verdict::Regressed);
        // An explicitly recorded zero spread counts as absent evidence.
        let mut base = parse_snapshot(V2).unwrap();
        let mut cand = parse_snapshot(V2).unwrap();
        base.points[0].spread.insert("vendor".to_string(), 0.0);
        cand.points[0].spread.insert("vendor".to_string(), 0.0);
        cand.points[0].gflops.insert("vendor".to_string(), 8.73);
        let entries = diff(&base, &cand, &zero_floor);
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert!((vendor.threshold - SPREADLESS_FLOOR).abs() < 1e-12);
        // A configured floor above the blanket still wins.
        let wide = DiffConfig {
            floor: 0.20,
            spread_factor: 2.0,
        };
        let base = parse_snapshot(V1).unwrap();
        let cand = with_vendor(V1, 8.1);
        let entries = diff(&base, &cand, &wide);
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert!((vendor.threshold - 0.20).abs() < 1e-12);
    }

    #[test]
    fn genuine_spreads_are_unaffected_by_the_blanket() {
        // With real spread evidence the threshold is spread-derived even
        // under a zero floor: 2 × (0.01 + 0.01) = 4%, below the blanket.
        let zero_floor = DiffConfig {
            floor: 0.0,
            spread_factor: 2.0,
        };
        let base = parse_snapshot(V2).unwrap();
        let cand = parse_snapshot(V2).unwrap();
        let entries = diff(&base, &cand, &zero_floor);
        let vendor = entries.iter().find(|e| e.variant == "vendor").unwrap();
        assert!((vendor.threshold - 0.04).abs() < 1e-12);
    }

    const GPU: &str = r#"{
      "schema": "perfport-bench-gpu/1",
      "quick": false,
      "manifest": {"schema": "perfport-manifest/1", "simd_isa": "avx2", "sched": "graph"},
      "headroom": {"a100": {"FP64": 4.0}, "mi250x": {"FP64": 15.1}},
      "points": [
        {"n": 64, "precision": "FP64",
         "gflops": {"cuda": 0.08, "tiled-nvidia": 0.05},
         "spread": {"cuda": 0.10, "tiled-nvidia": 0.03},
         "device_gflops": {"cuda": 2417.6, "tiled-nvidia": 9700.0},
         "occupancy": {"cuda": 1.0, "tiled-nvidia": 1.0},
         "headroom": {"a100": 4.01},
         "best_naive": "cuda"}
      ]
    }"#;

    #[test]
    fn gpu_snapshots_parse_with_their_own_kind() {
        let snap = parse_snapshot(GPU).unwrap();
        assert_eq!(snap.schema, "perfport-bench-gpu/1");
        assert_eq!(snap.kind, SnapshotKind::Gpu);
        assert_eq!(snap.sched.as_deref(), Some("graph"));
        assert_eq!(snap.points.len(), 1);
        let p = &snap.points[0];
        assert_eq!(p.gflops["cuda"], 0.08);
        assert_eq!(p.spread["tiled-nvidia"], 0.03);
        // The estimate/occupancy blocks are snapshot metadata, not cells.
        assert!(!p.gflops.contains_key("device_gflops"));

        assert_eq!(parse_snapshot(V2).unwrap().kind, SnapshotKind::Gemm);
        assert_eq!(parse_snapshot(SERVE).unwrap().kind, SnapshotKind::Serve);
    }

    #[test]
    fn gpu_snapshots_diff_like_any_other() {
        let base = parse_snapshot(GPU).unwrap();
        // tiled-nvidia dips 50%: spreads 0.03+0.03, threshold
        // max(0.05, 2·0.06) = 12% -> regression.
        let cand =
            parse_snapshot(&GPU.replacen("\"tiled-nvidia\": 0.05", "\"tiled-nvidia\": 0.025", 1))
                .unwrap();
        let entries = diff(&base, &cand, &DiffConfig::default());
        let tiled = entries
            .iter()
            .find(|e| e.variant == "tiled-nvidia")
            .unwrap();
        assert_eq!(tiled.verdict, Verdict::Regressed);
        let cuda = entries.iter().find(|e| e.variant == "cuda").unwrap();
        assert_eq!(cuda.verdict, Verdict::Ok);
    }
}
