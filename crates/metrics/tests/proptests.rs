//! Property-based tests for the portability metrics.

use perfport_metrics::{marowka_phi, pennycook_pp, EfficiencyMatrix};
use proptest::prelude::*;

fn effs() -> impl Strategy<Value = Vec<Option<f64>>> {
    proptest::collection::vec(proptest::option::weighted(0.8, 0.01f64..1.5), 1..8)
}

proptest! {
    /// Φ_M lies between 0 and the maximum efficiency.
    #[test]
    fn phi_bounds(e in effs()) {
        let phi = marowka_phi(&e);
        let max = e.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(phi >= 0.0);
        prop_assert!(phi <= max + 1e-12);
    }

    /// When every platform is supported, the harmonic mean never exceeds
    /// the arithmetic mean (AM–HM inequality), with equality only for
    /// uniform efficiencies.
    #[test]
    fn harmonic_below_arithmetic(values in proptest::collection::vec(0.01f64..1.5, 1..8)) {
        let e: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
        let phi = marowka_phi(&e);
        let pp = pennycook_pp(&e);
        prop_assert!(pp <= phi + 1e-12, "PP {pp} > Phi {phi}");
        let uniform = values.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15);
        if !uniform && values.len() > 1 {
            prop_assert!(pp < phi + 1e-12);
        }
    }

    /// Any unsupported platform zeroes PP but only dilutes Φ_M.
    #[test]
    fn missing_platform_effects(values in proptest::collection::vec(0.1f64..1.5, 2..8)) {
        let mut e: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
        let full_phi = marowka_phi(&e);
        e[0] = None;
        prop_assert_eq!(pennycook_pp(&e), 0.0);
        let diluted = marowka_phi(&e);
        prop_assert!(diluted <= full_phi + 1e-12);
        prop_assert!(diluted > 0.0);
    }

    /// Φ_M is permutation invariant.
    #[test]
    fn phi_permutation_invariant(e in effs(), rot in 0usize..8) {
        let mut rotated = e.clone();
        let len = rotated.len();
        if len > 0 {
            rotated.rotate_left(rot % len);
        }
        prop_assert!((marowka_phi(&e) - marowka_phi(&rotated)).abs() < 1e-12);
        prop_assert!((pennycook_pp(&e) - pennycook_pp(&rotated)).abs() < 1e-12);
    }

    /// Adding a platform with efficiency equal to the current Φ leaves Φ
    /// unchanged; adding a better one raises it.
    #[test]
    fn phi_responds_to_new_platforms(values in proptest::collection::vec(0.1f64..1.0, 1..6)) {
        let e: Vec<Option<f64>> = values.iter().copied().map(Some).collect();
        let phi = marowka_phi(&e);
        let mut same = e.clone();
        same.push(Some(phi));
        prop_assert!((marowka_phi(&same) - phi).abs() < 1e-12);
        let mut better = e.clone();
        better.push(Some(phi + 0.3));
        prop_assert!(marowka_phi(&better) > phi);
    }

    /// Matrix set/get round-trips and column extraction stays aligned.
    #[test]
    fn matrix_round_trip(
        rows in 1usize..5,
        cols in 1usize..4,
        values in proptest::collection::vec(0.0f64..1.5, 20),
    ) {
        let platforms: Vec<String> = (0..rows).map(|i| format!("p{i}")).collect();
        let models: Vec<String> = (0..cols).map(|i| format!("m{i}")).collect();
        let mut mat = EfficiencyMatrix::new(platforms.clone(), models.clone());
        let mut it = values.iter();
        for p in &platforms {
            for m in &models {
                if let Some(&v) = it.next() {
                    mat.set(p, m, v);
                    prop_assert_eq!(mat.get(p, m), Some(v));
                }
            }
        }
        for m in &models {
            prop_assert_eq!(mat.column(m).len(), rows);
        }
    }
}
