//! Performance-portability and productivity metrics (paper §V).
//!
//! * [`EfficiencyMatrix`] — per-(platform, model) performance
//!   efficiencies `e_i(a)` relative to the platform's vendor model
//!   (Eq. 2).
//! * [`marowka_phi`] — the paper's Φ_M (Eq. 1): the *arithmetic* mean of
//!   a model's efficiencies over the platform set, counting unsupported
//!   platforms as zero (this is how the paper's Python/Numba Φ_M = 0.348
//!   arises from `{0.550, 0.713, —, 0.130}`).
//! * [`pennycook_pp`] — the original Pennycook–Sewall–Lee metric: the
//!   *harmonic* mean over the platform set, defined to be 0 when any
//!   platform in the set is unsupported. Comparing the two aggregations
//!   is the paper's §V discussion, extended here as experiment A3.
//! * [`mod@productivity`] — source-code productivity measures (lines,
//!   tokens, parallel-annotation count) for the paper's Fig. 2/3
//!   snippets.

pub mod efficiency;
pub mod productivity;

pub use efficiency::{marowka_phi, pennycook_pp, EfficiencyMatrix};
pub use productivity::{productivity, Productivity};
