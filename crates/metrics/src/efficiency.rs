//! Efficiency matrices and the two portability aggregations.

use serde::Serialize;

/// Per-(platform, model) performance efficiencies.
///
/// `None` marks a combination the model cannot run at all (e.g.
/// Python/Numba on AMD GPUs) — distinct from a low efficiency.
#[derive(Debug, Clone, Serialize)]
pub struct EfficiencyMatrix {
    platforms: Vec<String>,
    models: Vec<String>,
    /// `data[platform][model]`.
    data: Vec<Vec<Option<f64>>>,
}

impl EfficiencyMatrix {
    /// Creates an empty matrix (all combinations unsupported).
    pub fn new(platforms: Vec<String>, models: Vec<String>) -> Self {
        let data = vec![vec![None; models.len()]; platforms.len()];
        EfficiencyMatrix {
            platforms,
            models,
            data,
        }
    }

    /// Platform labels, in row order.
    pub fn platforms(&self) -> &[String] {
        &self.platforms
    }

    /// Model labels, in column order.
    pub fn models(&self) -> &[String] {
        &self.models
    }

    fn platform_idx(&self, platform: &str) -> usize {
        self.platforms
            .iter()
            .position(|p| p == platform)
            .unwrap_or_else(|| panic!("unknown platform {platform}"))
    }

    fn model_idx(&self, model: &str) -> usize {
        self.models
            .iter()
            .position(|m| m == model)
            .unwrap_or_else(|| panic!("unknown model {model}"))
    }

    /// Records the efficiency of `model` on `platform`.
    ///
    /// # Panics
    ///
    /// Panics for unknown labels or a non-finite/negative value.
    pub fn set(&mut self, platform: &str, model: &str, efficiency: f64) {
        assert!(
            efficiency.is_finite() && efficiency >= 0.0,
            "efficiency must be finite and non-negative"
        );
        let (p, m) = (self.platform_idx(platform), self.model_idx(model));
        self.data[p][m] = Some(efficiency);
    }

    /// The efficiency of `model` on `platform`, `None` if unsupported.
    pub fn get(&self, platform: &str, model: &str) -> Option<f64> {
        self.data[self.platform_idx(platform)][self.model_idx(model)]
    }

    /// The efficiency column of one model across all platforms.
    pub fn column(&self, model: &str) -> Vec<Option<f64>> {
        let m = self.model_idx(model);
        self.data.iter().map(|row| row[m]).collect()
    }

    /// Marowka Φ_M for one model (Eq. 1).
    pub fn marowka_phi(&self, model: &str) -> f64 {
        marowka_phi(&self.column(model))
    }

    /// Pennycook PP for one model.
    pub fn pennycook_pp(&self, model: &str) -> f64 {
        pennycook_pp(&self.column(model))
    }

    /// Models ranked by Φ_M, best first.
    pub fn ranking(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .models
            .iter()
            .map(|m| (m.clone(), self.marowka_phi(m)))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("phi values are finite"));
        out
    }
}

/// The paper's Φ_M (Eq. 1): `Σ e_i / |T|` with unsupported platforms
/// contributing 0 to the numerator but still counted in `|T|`.
///
/// Reproduces Table III exactly: Python/Numba's `{0.550, 0.713, —,
/// 0.130}` yields `1.393 / 4 = 0.348`.
///
/// ```
/// use perfport_metrics::marowka_phi;
/// let numba = [Some(0.550), Some(0.713), None, Some(0.130)];
/// assert!((marowka_phi(&numba) - 0.348).abs() < 0.001);
/// ```
pub fn marowka_phi(efficiencies: &[Option<f64>]) -> f64 {
    if efficiencies.is_empty() {
        return 0.0;
    }
    let sum: f64 = efficiencies.iter().flatten().sum();
    sum / efficiencies.len() as f64
}

/// Pennycook–Sewall–Lee PP: the harmonic mean of the efficiencies when
/// the application runs correctly on *every* platform of the set, else 0.
pub fn pennycook_pp(efficiencies: &[Option<f64>]) -> f64 {
    if efficiencies.is_empty() || efficiencies.iter().any(Option::is_none) {
        return 0.0;
    }
    let mut denom = 0.0;
    for e in efficiencies.iter().flatten() {
        if *e <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / e;
    }
    efficiencies.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's double-precision Table III, as data.
    fn table_iii_double() -> EfficiencyMatrix {
        let mut m = EfficiencyMatrix::new(
            vec![
                "Epyc 7A53".into(),
                "Ampere Altra".into(),
                "MI250x".into(),
                "A100".into(),
            ],
            vec!["Kokkos".into(), "Julia".into(), "Python/Numba".into()],
        );
        for (p, k, j, n) in [
            ("Epyc 7A53", 0.994, 0.912, Some(0.550)),
            ("Ampere Altra", 0.854, 0.907, Some(0.713)),
            ("MI250x", 0.842, 0.903, None),
            ("A100", 0.260, 0.867, Some(0.130)),
        ] {
            m.set(p, "Kokkos", k);
            m.set(p, "Julia", j);
            if let Some(v) = n {
                m.set(p, "Python/Numba", v);
            }
        }
        m
    }

    #[test]
    fn marowka_reproduces_table_iii_phis() {
        let m = table_iii_double();
        assert!((m.marowka_phi("Kokkos") - 0.738).abs() < 0.001);
        assert!((m.marowka_phi("Julia") - 0.897).abs() < 0.001);
        assert!((m.marowka_phi("Python/Numba") - 0.348).abs() < 0.001);
    }

    #[test]
    fn ranking_matches_the_paper() {
        let m = table_iii_double();
        let ranking = m.ranking();
        let names: Vec<&str> = ranking.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Julia", "Kokkos", "Python/Numba"]);
    }

    #[test]
    fn pennycook_zeroes_incomplete_models() {
        let m = table_iii_double();
        // Numba misses MI250X entirely: PP = 0 even though Φ_M > 0.
        assert_eq!(m.pennycook_pp("Python/Numba"), 0.0);
        assert!(m.pennycook_pp("Julia") > 0.0);
        // Harmonic mean penalises Kokkos' A100 outlier much harder than
        // the arithmetic mean does.
        assert!(m.pennycook_pp("Kokkos") < m.marowka_phi("Kokkos"));
    }

    #[test]
    fn harmonic_mean_computation() {
        let e = vec![Some(0.5), Some(1.0)];
        // 2 / (2 + 1) = 0.666…
        assert!((pennycook_pp(&e) - 2.0 / 3.0).abs() < 1e-12);
        let uniform = vec![Some(0.8); 4];
        assert!((pennycook_pp(&uniform) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(marowka_phi(&[]), 0.0);
        assert_eq!(pennycook_pp(&[]), 0.0);
        assert_eq!(pennycook_pp(&[Some(0.0), Some(1.0)]), 0.0);
        assert_eq!(marowka_phi(&[None, None]), 0.0);
    }

    #[test]
    fn unsupported_dilutes_marowka_but_not_to_zero() {
        let partial = vec![Some(1.0), None];
        assert!((marowka_phi(&partial) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_accessors() {
        let m = table_iii_double();
        assert_eq!(m.get("A100", "Kokkos"), Some(0.260));
        assert_eq!(m.get("MI250x", "Python/Numba"), None);
        assert_eq!(m.platforms().len(), 4);
        assert_eq!(m.models().len(), 3);
        assert_eq!(m.column("Julia").len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown platform")]
    fn unknown_platform_panics() {
        let m = table_iii_double();
        let _ = m.get("Grace Hopper", "Julia");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_efficiency_rejected() {
        let mut m = EfficiencyMatrix::new(vec!["p".into()], vec!["m".into()]);
        m.set("p", "m", f64::NAN);
    }
}
