//! Source-productivity measures over the paper's kernel snippets.
//!
//! The paper's §V discussion contrasts how much code each model needs to
//! express the same kernel and how invasive the parallel annotations
//! are. These measures are deliberately simple (the paper reports no
//! formal productivity metric, only qualitative discussion): non-blank
//! source lines, a whitespace/punctuation token count, and the number of
//! parallelism-specific annotations.

use serde::Serialize;

/// Productivity measures of one kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Productivity {
    /// Non-blank, non-comment-only source lines.
    pub lines: usize,
    /// Tokens after splitting on whitespace and punctuation.
    pub tokens: usize,
    /// Parallelism-specific annotations (pragmas, macros, decorators,
    /// thread-index intrinsics).
    pub parallel_annotations: usize,
}

/// Keywords that mark parallelism machinery across the five languages of
/// Figs. 2–3.
const PARALLEL_MARKERS: [&str; 14] = [
    "#pragma",
    "omp",
    "parallel_for",
    "KOKKOS_LAMBDA",
    "@threads",
    "@inbounds",
    "prange",
    "njit",
    "cuda.jit",
    "cuda.grid",
    "blockIdx",
    "threadIdx",
    "blockDim",
    "workitemIdx",
];

/// Measures a source snippet.
pub fn productivity(source: &str) -> Productivity {
    let mut lines = 0;
    let mut tokens = 0;
    let mut parallel_annotations = 0;

    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        lines += 1;
        tokens += trimmed
            .split(|c: char| c.is_whitespace() || "()[]{},;:".contains(c))
            .filter(|t| !t.is_empty())
            .count();
    }
    for marker in PARALLEL_MARKERS {
        parallel_annotations += source.matches(marker).count();
    }
    Productivity {
        lines,
        tokens,
        parallel_annotations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_lines_and_tokens() {
        let p = productivity("a = b + c\n\n  x(y, z);\n");
        assert_eq!(p.lines, 2);
        assert_eq!(p.tokens, 5 + 3);
        assert_eq!(p.parallel_annotations, 0);
    }

    #[test]
    fn detects_openmp_annotations() {
        let p = productivity("#pragma omp parallel for\nfor (i = 0; i < n; ++i) {}");
        assert!(p.parallel_annotations >= 2); // #pragma + omp
    }

    #[test]
    fn detects_julia_macros() {
        let p = productivity("@threads for j in 1:n\n  @inbounds C[i,j] += 1\nend");
        assert_eq!(p.parallel_annotations, 2);
    }

    #[test]
    fn detects_cuda_intrinsics() {
        let p = productivity("int row = blockIdx.y * blockDim.y + threadIdx.y;");
        assert_eq!(p.parallel_annotations, 3);
    }

    #[test]
    fn detects_numba_decorators() {
        let p = productivity("@njit(parallel=True)\ndef gemm(A):\n  for i in prange(10): pass");
        assert!(p.parallel_annotations >= 2);
    }

    #[test]
    fn empty_source() {
        let p = productivity("");
        assert_eq!(
            p,
            Productivity {
                lines: 0,
                tokens: 0,
                parallel_annotations: 0
            }
        );
    }
}
